"""SQLite comparator, tuned for main memory exactly as in Section 5.

The paper runs SQLite 3.6.22 "tuned for main memory operation by
turning off the journal mode and synchronisations and by instructing it
to use in-memory temporary store".  We apply the same pragmas to the
stdlib :mod:`sqlite3` (an in-memory database, so the journal/sync knobs
are belt-and-braces).

PostgreSQL is not available in this offline environment; the paper
reports it as a near-constant factor (~3x) slower than SQLite in every
experiment, so EXPERIMENTS.md carries that observation forward instead
of a measured series (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import sqlite3
from typing import List, Optional, Tuple

from repro.query.query import Query
from repro.relational.budget import Budget, BudgetExceeded
from repro.relational.database import Database


class SQLiteEngine:
    """Evaluate SPJ queries with an in-memory SQLite database.

    >>> db = Database()
    >>> _ = db.add_rows("R", ("a", "b"), [(1, 10), (2, 20)])
    >>> _ = db.add_rows("S", ("c", "d"), [(10, 5), (30, 6)])
    >>> engine = SQLiteEngine(db)
    >>> engine.count(Query.make(["R", "S"], [("b", "c")]))
    1
    """

    def __init__(
        self, database: Database, budget: Optional[Budget] = None
    ) -> None:
        self.database = database
        self.budget = budget
        self._conn = sqlite3.connect(":memory:")
        self._tune()
        self._load()

    def _tune(self) -> None:
        cur = self._conn.cursor()
        cur.execute("PRAGMA journal_mode = OFF")
        cur.execute("PRAGMA synchronous = OFF")
        cur.execute("PRAGMA temp_store = MEMORY")
        cur.close()

    def _load(self) -> None:
        cur = self._conn.cursor()
        for relation in self.database:
            columns = ", ".join(f'"{a}"' for a in relation.attributes)
            cur.execute(f'CREATE TABLE "{relation.name}" ({columns})')
            placeholders = ", ".join("?" for _ in relation.attributes)
            cur.executemany(
                f'INSERT INTO "{relation.name}" VALUES ({placeholders})',
                relation.rows,
            )
        self._conn.commit()
        cur.close()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SQLiteEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def to_sql(self, query: Query) -> Tuple[str, List[object]]:
        """Translate a :class:`Query` to parametrised SQL."""
        query.validate_against(self.database.schema())
        if query.projection is None:
            select = "*"
        else:
            select = ", ".join(f'"{a}"' for a in query.projection)
        from_clause = ", ".join(f'"{name}"' for name in query.relations)
        conditions: List[str] = []
        params: List[object] = []
        for eq in query.equalities:
            conditions.append(f'"{eq.left}" = "{eq.right}"')
        for cond in query.constants:
            conditions.append(f'"{cond.attribute}" {cond.op} ?')
            params.append(cond.value)
        sql = f"SELECT DISTINCT {select} FROM {from_clause}"
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        return sql, params

    def evaluate(self, query: Query) -> List[Tuple[object, ...]]:
        """Run the query, returning all result rows."""
        if self.budget is not None:
            self.budget.restart()
        sql, params = self.to_sql(query)
        cur = self._conn.cursor()
        try:
            rows: List[Tuple[object, ...]] = []
            cursor = cur.execute(sql, params)
            while True:
                batch = cursor.fetchmany(4096)
                if not batch:
                    break
                rows.extend(batch)
                if self.budget is not None:
                    try:
                        self.budget.check_now()
                        self.budget.check(len(rows))
                    except BudgetExceeded:
                        raise
            return rows
        finally:
            cur.close()

    def count(self, query: Query) -> int:
        """Result cardinality via SQL aggregation (no row transfer)."""
        sql, params = self.to_sql(query)
        cur = self._conn.cursor()
        try:
            wrapped = f"SELECT COUNT(*) FROM ({sql})"
            return int(cur.execute(wrapped, params).fetchone()[0])
        finally:
            cur.close()

    def count_with_timeout(
        self, query: Query, timeout_seconds: float
    ) -> int:
        """Like :meth:`count`, aborting after ``timeout_seconds``.

        Implements the paper's 100-second evaluation timeout through
        SQLite's progress handler; raises :class:`BudgetExceeded` when
        the deadline passes (reported as a DNF by the benchmarks).
        """
        import time as _time

        deadline = _time.perf_counter() + timeout_seconds

        def abort_when_late() -> int:
            return 1 if _time.perf_counter() > deadline else 0

        self._conn.set_progress_handler(abort_when_late, 10_000)
        try:
            return self.count(query)
        except sqlite3.OperationalError as exc:
            if "interrupted" in str(exc):
                raise BudgetExceeded(
                    f"SQLite timeout after {timeout_seconds}s"
                ) from exc
            raise
        finally:
            self._conn.set_progress_handler(None, 0)
