"""Evaluation budgets: wall-clock timeouts and row caps.

Section 5 runs the relational engines with a 100-second timeout, which
several configurations exceed ("no plotted data points").  The budget
object reproduces that protocol: operators periodically call
:meth:`Budget.check` and abort with :class:`BudgetExceeded` when the
deadline or the row cap is crossed, so a benchmark can record a DNF
instead of hanging.
"""

from __future__ import annotations

import time
from typing import Optional


class BudgetExceeded(RuntimeError):
    """Raised when an evaluation exceeds its time or size budget."""


class Budget:
    """A cooperative evaluation budget.

    Parameters
    ----------
    timeout_seconds:
        Wall-clock limit from the moment of construction (or the last
        :meth:`restart`); ``None`` disables the time check.
    max_rows:
        Cap on the number of rows any single operator may produce;
        ``None`` disables the cap.
    """

    #: How many row-productions between clock reads (keeps overhead low).
    CHECK_EVERY = 4096

    def __init__(
        self,
        timeout_seconds: Optional[float] = None,
        max_rows: Optional[int] = None,
    ) -> None:
        self.timeout_seconds = timeout_seconds
        self.max_rows = max_rows
        self._deadline: Optional[float] = None
        self._ticks = 0
        self.restart()

    def restart(self) -> None:
        """Restart the wall clock (call at the start of a query)."""
        if self.timeout_seconds is not None:
            self._deadline = time.perf_counter() + self.timeout_seconds
        else:
            self._deadline = None
        self._ticks = 0

    def check(self, rows_so_far: int = 0) -> None:
        """Raise :class:`BudgetExceeded` if any limit is crossed."""
        if self.max_rows is not None and rows_so_far > self.max_rows:
            raise BudgetExceeded(
                f"row cap exceeded: {rows_so_far} > {self.max_rows}"
            )
        if self._deadline is not None:
            self._ticks += 1
            if self._ticks % self.CHECK_EVERY == 0:
                if time.perf_counter() > self._deadline:
                    raise BudgetExceeded(
                        f"timeout after {self.timeout_seconds}s"
                    )

    def check_now(self) -> None:
        """Unconditional deadline check (between operators)."""
        if self._deadline is not None:
            if time.perf_counter() > self._deadline:
                raise BudgetExceeded(f"timeout after {self.timeout_seconds}s")


#: A budget that never trips, used as the default everywhere.
UNLIMITED = Budget()
