"""Row-level mutation deltas and the bounded per-database delta log.

Incremental view maintenance (:mod:`repro.ivm`) needs to know *what*
changed between two database versions, not merely *that* the version
counter moved.  Every mutation on :class:`~repro.relational.database.
Database` records one :class:`Delta` -- the relation touched plus the
exact sets of inserted and removed tuples -- in a bounded
:class:`DeltaLog`.  Consumers holding a result computed at version
``v`` ask :meth:`DeltaLog.since` for the deltas ``v -> current``; a
``None`` answer means the gap is not explainable (log truncated,
schema changed, or the version is from another database's timeline)
and the consumer must fall back to wholesale invalidation, exactly as
before this log existed.

The log is deliberately conservative:

- schema changes (``Database.add``) are recorded as opaque
  :attr:`Delta.schema_change` markers that poison any range containing
  them -- no consumer tries to absorb a new relation incrementally;
- capacity is bounded (default :data:`DEFAULT_CAPACITY`); once old
  deltas roll off, ranges reaching past the retained window return
  ``None`` rather than a partial answer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

#: Deltas retained before old entries roll off the log.  Sized for
#: serving workloads (a handful of mutations between queries), not for
#: replication: consumers needing unbounded history should snapshot.
DEFAULT_CAPACITY = 64


@dataclass(frozen=True)
class Delta:
    """One recorded mutation: the database moved *to* ``version``.

    ``inserted`` and ``removed`` are the exact row-set differences
    (new minus old and old minus new), so an update that collides two
    rows into one is represented faithfully and replaying
    ``(old - removed) | inserted`` reproduces the new relation.
    """

    version: int
    relation: str
    inserted: Tuple[Tuple[object, ...], ...] = ()
    removed: Tuple[Tuple[object, ...], ...] = ()
    #: True for catalogue-level changes (new relation registered);
    #: such deltas cannot be absorbed incrementally by any consumer.
    schema_change: bool = False

    @property
    def insert_only(self) -> bool:
        """True when this delta only ever added rows."""
        return not self.schema_change and not self.removed


@dataclass
class DeltaLog:
    """A bounded, append-only record of a database's recent mutations.

    >>> log = DeltaLog(capacity=8)
    >>> log.record(Delta(version=1, relation="R", inserted=((1, 2),)))
    >>> [d.relation for d in log.since(0)]
    ['R']
    >>> log.since(1)
    []
    """

    capacity: int = DEFAULT_CAPACITY
    _entries: Deque[Delta] = field(default_factory=deque)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(
                f"delta log capacity must be positive, got {self.capacity}"
            )

    def record(self, delta: Delta) -> None:
        """Append one delta, dropping the oldest beyond capacity."""
        self._entries.append(delta)
        while len(self._entries) > self.capacity:
            self._entries.popleft()

    def __len__(self) -> int:
        return len(self._entries)

    def last(self) -> Optional[Delta]:
        return self._entries[-1] if self._entries else None

    def since(self, version: int) -> Optional[List[Delta]]:
        """The deltas moving the database from ``version`` to now.

        Returns ``[]`` when ``version`` is current, or ``None`` when
        the range cannot be explained: the requested version is ahead
        of the log, the range reaches past the retained window, or it
        contains a schema change.  ``None`` means "invalidate
        wholesale"; callers must not treat it as an empty list.
        """
        if not self._entries:
            # An empty log explains only "nothing happened".  With no
            # entries we cannot know the current version here; the
            # Database wrapper handles the version == current case
            # before consulting the log.
            return None
        newest = self._entries[-1].version
        if version > newest:
            return None  # version from the future (or another timeline)
        if version == newest:
            return []
        oldest = self._entries[0].version
        if version < oldest - 1:
            return None  # range reaches past the retained window
        out: List[Delta] = []
        for delta in self._entries:
            if delta.version <= version:
                continue
            if delta.schema_change:
                return None  # catalogue changed inside the range
            out.append(delta)
        return out
