"""Flat relational substrate: the "RDB" baseline engine of the paper.

The paper compares FDB against a homebred in-memory relational engine
(RDB) plus SQLite and PostgreSQL.  This subpackage is that substrate:

- :mod:`repro.relational.schema` / :mod:`relation` -- schemas and
  in-memory relations (sorted tuple storage, set semantics);
- :mod:`repro.relational.database` -- a named catalogue of relations
  with the statistics used by the cardinality-based cost model;
- :mod:`repro.relational.operators` -- selection, projection, product,
  sort-merge and hash equi-joins;
- :mod:`repro.relational.engine` -- the RDB query engine: multi-way
  joins with a greedy, estimate-driven join order (the "hand-crafted
  optimised query plan" stand-in);
- :mod:`repro.relational.sqlite_engine` -- the SQLite comparator, tuned
  for main-memory operation exactly as in Section 5;
- :mod:`repro.relational.csvio` -- plain-text I/O.
"""

from repro.relational.schema import RelationSchema, SchemaError
from repro.relational.relation import Relation
from repro.relational.database import Database
from repro.relational.engine import RelationalEngine
from repro.relational.sqlite_engine import SQLiteEngine

__all__ = [
    "Database",
    "Relation",
    "RelationalEngine",
    "RelationSchema",
    "SchemaError",
    "SQLiteEngine",
]
