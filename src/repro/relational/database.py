"""A named catalogue of relations plus the statistics catalog.

The database enforces the global-attribute-name convention (an
attribute belongs to exactly one relation) and exposes the cardinality
and distinct-value statistics used by the estimate-based cost measure
of Section 4.1.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, SchemaError


class Database:
    """A collection of relations with globally unique attribute names.

    >>> db = Database()
    >>> _ = db.add_rows("R", ("a", "b"), [(1, 2)])
    >>> db.relation_of("a").name
    'R'
    >>> db.total_size
    1
    """

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: Dict[str, Relation] = {}
        self._attr_owner: Dict[str, str] = {}
        self._version = 0
        for relation in relations:
            self.add(relation)

    @property
    def version(self) -> int:
        """Mutation counter, bumped on every catalogue change.

        Consumers that cache derived state (statistics catalogues,
        compiled plans -- see :mod:`repro.service`) compare the version
        they captured against the current one to detect staleness.
        """
        return self._version

    def add(self, relation: Relation) -> Relation:
        """Register ``relation``; checks name/attribute uniqueness."""
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        for attr in relation.attributes:
            owner = self._attr_owner.get(attr)
            if owner is not None:
                raise SchemaError(
                    f"attribute {attr!r} already belongs to {owner!r}"
                )
        self._relations[relation.name] = relation
        for attr in relation.attributes:
            self._attr_owner[attr] = relation.name
        self._version += 1
        return relation

    def add_rows(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[object]],
    ) -> Relation:
        """Build and register a relation from raw rows."""
        return self.add(Relation.from_rows(name, attributes, rows))

    def _store(self, relation: Relation) -> Relation:
        """Replace the stored relation of the same name, silently.

        Internal plumbing for the mutation methods (and the sharding
        layer's partition rebuilds): no version bump, no uniqueness
        re-check beyond requiring an unchanged schema.
        """
        current = self[relation.name]
        if current.attributes != relation.attributes:
            raise SchemaError(
                f"cannot change attributes of {relation.name!r} from "
                f"{current.attributes} to {relation.attributes}"
            )
        self._relations[relation.name] = relation
        return relation

    def extend_rows(
        self, name: str, rows: Iterable[Sequence[object]]
    ) -> Relation:
        """Append ``rows`` to an existing relation (set semantics).

        Replaces the stored relation with one containing the union of
        old and new tuples and bumps :attr:`version`, so cached plans
        and statistics over this database are invalidated.
        """
        old = self[name]
        merged = self._store(
            Relation.from_rows(
                name,
                old.attributes,
                list(old.rows) + [tuple(r) for r in rows],
            )
        )
        self._version += 1
        return merged

    def delete_rows(
        self,
        name: str,
        rows: Optional[Iterable[Sequence[object]]] = None,
        where: Optional[Callable[[Tuple[object, ...]], bool]] = None,
    ) -> int:
        """Delete rows from ``name``; returns how many were removed.

        A row is removed when it appears in ``rows`` (compared as
        tuples) *or* satisfies the ``where`` predicate (called with the
        full row tuple in :attr:`Relation.attributes` order).  At least
        one criterion is required -- delete-everything must be spelled
        ``where=lambda row: True``, not implied by omission.  Bumps
        :attr:`version` only when at least one row actually went away,
        so no-op deletes do not invalidate caches.

        >>> db = Database()
        >>> _ = db.add_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
        >>> db.delete_rows("R", where=lambda row: row[0] == 1)
        2
        >>> len(db["R"])
        1
        """
        if rows is None and where is None:
            raise ValueError(
                "delete_rows needs rows and/or where; to delete every "
                "row pass where=lambda row: True"
            )
        old = self[name]
        doomed = {tuple(r) for r in rows} if rows is not None else set()
        kept = [
            row
            for row in old.rows
            if row not in doomed and not (where is not None and where(row))
        ]
        removed = len(old) - len(kept)
        if removed:
            self._store(Relation(old.schema, kept))
            self._version += 1
        return removed

    def update_rows(
        self,
        name: str,
        where: Callable[[Tuple[object, ...]], bool],
        updates: Mapping[str, object],
    ) -> int:
        """Update rows of ``name`` matching ``where``; returns the
        number of rows rewritten.

        ``updates`` maps attribute name to either a new constant or a
        callable receiving the full old row tuple.  Set semantics
        apply: an update that makes two rows collide stores one copy.
        Bumps :attr:`version` only when some row actually changed.

        >>> db = Database()
        >>> _ = db.add_rows("R", ("a", "b"), [(1, 1), (2, 2)])
        >>> db.update_rows("R", lambda row: row[0] == 2, {"b": 9})
        1
        >>> db["R"].rows
        [(1, 1), (2, 9)]
        """
        old = self[name]
        positions = {
            attr: old.schema.index_of(attr) for attr in updates
        }
        changed = 0
        new_rows: List[Tuple[object, ...]] = []
        for row in old.rows:
            if where(row):
                rewritten = list(row)
                for attr, value in updates.items():
                    rewritten[positions[attr]] = (
                        value(row) if callable(value) else value
                    )
                new = tuple(rewritten)
                if new != row:
                    changed += 1
                new_rows.append(new)
            else:
                new_rows.append(row)
        if changed:
            self._store(
                Relation.from_rows(name, old.attributes, new_rows)
            )
            self._version += 1
        return changed

    def add_renamed(
        self, source: str, new_name: str, mapping: Mapping[str, str]
    ) -> Relation:
        """Register a renamed copy of ``source`` (for self-joins)."""
        relation = self[source].renamed(new_name, dict(mapping))
        return self.add(relation)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> List[str]:
        return list(self._relations)

    @property
    def total_size(self) -> int:
        """Total number of tuples, the paper's ``|D|``."""
        return sum(len(r) for r in self._relations.values())

    def schema(self) -> Dict[str, Tuple[str, ...]]:
        """Mapping relation name -> attribute tuple."""
        return {
            name: rel.attributes for name, rel in self._relations.items()
        }

    def relation_of(self, attribute: str) -> Relation:
        """The unique relation owning ``attribute``."""
        owner = self._attr_owner.get(attribute)
        if owner is None:
            raise SchemaError(f"attribute {attribute!r} not in database")
        return self._relations[owner]

    def attributes(self) -> List[str]:
        """All attribute names across all relations."""
        return list(self._attr_owner)

    # -- statistics for the estimate-based cost measure ------------------

    def cardinality(self, name: str) -> int:
        return len(self[name])

    def distinct(self, attribute: str) -> int:
        """Distinct count of ``attribute`` in its owning relation."""
        return self.relation_of(attribute).distinct_count(attribute)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Full catalogue snapshot: sizes and per-attribute distincts."""
        out: Dict[str, Dict[str, int]] = {}
        for name, relation in self._relations.items():
            entry = {"__cardinality__": len(relation)}
            for attr in relation.attributes:
                entry[attr] = relation.distinct_count(attr)
            out[name] = entry
        return out
