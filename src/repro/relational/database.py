"""A named catalogue of relations plus the statistics catalog.

The database enforces the global-attribute-name convention (an
attribute belongs to exactly one relation) and exposes the cardinality
and distinct-value statistics used by the estimate-based cost measure
of Section 4.1.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, SchemaError


class Database:
    """A collection of relations with globally unique attribute names.

    >>> db = Database()
    >>> _ = db.add_rows("R", ("a", "b"), [(1, 2)])
    >>> db.relation_of("a").name
    'R'
    >>> db.total_size
    1
    """

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: Dict[str, Relation] = {}
        self._attr_owner: Dict[str, str] = {}
        self._version = 0
        for relation in relations:
            self.add(relation)

    @property
    def version(self) -> int:
        """Mutation counter, bumped on every catalogue change.

        Consumers that cache derived state (statistics catalogues,
        compiled plans -- see :mod:`repro.service`) compare the version
        they captured against the current one to detect staleness.
        """
        return self._version

    def add(self, relation: Relation) -> Relation:
        """Register ``relation``; checks name/attribute uniqueness."""
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        for attr in relation.attributes:
            owner = self._attr_owner.get(attr)
            if owner is not None:
                raise SchemaError(
                    f"attribute {attr!r} already belongs to {owner!r}"
                )
        self._relations[relation.name] = relation
        for attr in relation.attributes:
            self._attr_owner[attr] = relation.name
        self._version += 1
        return relation

    def add_rows(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[object]],
    ) -> Relation:
        """Build and register a relation from raw rows."""
        return self.add(Relation.from_rows(name, attributes, rows))

    def extend_rows(
        self, name: str, rows: Iterable[Sequence[object]]
    ) -> Relation:
        """Append ``rows`` to an existing relation (set semantics).

        Replaces the stored relation with one containing the union of
        old and new tuples and bumps :attr:`version`, so cached plans
        and statistics over this database are invalidated.
        """
        old = self[name]
        merged = Relation.from_rows(
            name, old.attributes, list(old.rows) + [tuple(r) for r in rows]
        )
        self._relations[name] = merged
        self._version += 1
        return merged

    def add_renamed(
        self, source: str, new_name: str, mapping: Mapping[str, str]
    ) -> Relation:
        """Register a renamed copy of ``source`` (for self-joins)."""
        relation = self[source].renamed(new_name, dict(mapping))
        return self.add(relation)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> List[str]:
        return list(self._relations)

    @property
    def total_size(self) -> int:
        """Total number of tuples, the paper's ``|D|``."""
        return sum(len(r) for r in self._relations.values())

    def schema(self) -> Dict[str, Tuple[str, ...]]:
        """Mapping relation name -> attribute tuple."""
        return {
            name: rel.attributes for name, rel in self._relations.items()
        }

    def relation_of(self, attribute: str) -> Relation:
        """The unique relation owning ``attribute``."""
        owner = self._attr_owner.get(attribute)
        if owner is None:
            raise SchemaError(f"attribute {attribute!r} not in database")
        return self._relations[owner]

    def attributes(self) -> List[str]:
        """All attribute names across all relations."""
        return list(self._attr_owner)

    # -- statistics for the estimate-based cost measure ------------------

    def cardinality(self, name: str) -> int:
        return len(self[name])

    def distinct(self, attribute: str) -> int:
        """Distinct count of ``attribute`` in its owning relation."""
        return self.relation_of(attribute).distinct_count(attribute)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Full catalogue snapshot: sizes and per-attribute distincts."""
        out: Dict[str, Dict[str, int]] = {}
        for name, relation in self._relations.items():
            entry = {"__cardinality__": len(relation)}
            for attr in relation.attributes:
                entry[attr] = relation.distinct_count(attr)
            out[name] = entry
        return out
