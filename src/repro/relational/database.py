"""A named catalogue of relations plus the statistics catalog.

The database enforces the global-attribute-name convention (an
attribute belongs to exactly one relation) and exposes the cardinality
and distinct-value statistics used by the estimate-based cost measure
of Section 4.1.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.relational.delta import DEFAULT_CAPACITY, Delta, DeltaLog
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, SchemaError


class Database:
    """A collection of relations with globally unique attribute names.

    >>> db = Database()
    >>> _ = db.add_rows("R", ("a", "b"), [(1, 2)])
    >>> db.relation_of("a").name
    'R'
    >>> db.total_size
    1
    """

    def __init__(
        self,
        relations: Iterable[Relation] = (),
        delta_log_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self._relations: Dict[str, Relation] = {}
        self._attr_owner: Dict[str, str] = {}
        self._version = 0
        self._delta_log = DeltaLog(capacity=delta_log_capacity)
        for relation in relations:
            self.add(relation)

    @property
    def version(self) -> int:
        """Mutation counter, bumped on every catalogue change.

        Consumers that cache derived state (statistics catalogues,
        compiled plans -- see :mod:`repro.service`) compare the version
        they captured against the current one to detect staleness.
        """
        return self._version

    @property
    def delta_log(self) -> DeltaLog:
        """The bounded log of recent mutations (see
        :mod:`repro.relational.delta`)."""
        return self._delta_log

    def changes_since(self, version: int) -> Optional[List[Delta]]:
        """The recorded deltas moving this database from ``version`` to
        :attr:`version`, oldest first.

        ``[]`` means nothing changed; ``None`` means the gap cannot be
        explained from the retained log (truncation, a schema change in
        the range, or a version from another timeline) and callers must
        invalidate wholesale.  Every returned delta is data-only.
        """
        if version == self._version:
            return []
        if version > self._version:
            return None
        last = self._delta_log.last()
        if last is None or last.version != self._version:
            # The log does not reach the present -- e.g. the persist
            # codec restored ``version`` directly after a load.  Only a
            # log whose newest entry produced the current version can
            # explain a gap ending here.
            return None
        return self._delta_log.since(version)

    def add(self, relation: Relation) -> Relation:
        """Register ``relation``; checks name/attribute uniqueness."""
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        for attr in relation.attributes:
            owner = self._attr_owner.get(attr)
            if owner is not None:
                raise SchemaError(
                    f"attribute {attr!r} already belongs to {owner!r}"
                )
        self._relations[relation.name] = relation
        for attr in relation.attributes:
            self._attr_owner[attr] = relation.name
        self._version += 1
        self._delta_log.record(
            Delta(
                version=self._version,
                relation=relation.name,
                schema_change=True,
            )
        )
        return relation

    def add_rows(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[object]],
    ) -> Relation:
        """Build and register a relation from raw rows."""
        return self.add(Relation.from_rows(name, attributes, rows))

    def _store(self, relation: Relation) -> Relation:
        """Replace the stored relation of the same name, silently.

        Internal plumbing for the mutation methods (and the sharding
        layer's partition rebuilds): no version bump, no uniqueness
        re-check beyond requiring an unchanged schema.
        """
        current = self[relation.name]
        if current.attributes != relation.attributes:
            raise SchemaError(
                f"cannot change attributes of {relation.name!r} from "
                f"{current.attributes} to {relation.attributes}"
            )
        self._relations[relation.name] = relation
        return relation

    def extend_rows(
        self, name: str, rows: Iterable[Sequence[object]]
    ) -> Relation:
        """Append ``rows`` to an existing relation (set semantics).

        Replaces the stored relation with one containing the union of
        old and new tuples and bumps :attr:`version`, so cached plans
        and statistics over this database are invalidated.
        """
        old = self[name]
        existing = set(old.rows)
        merged = self._store(
            Relation.from_rows(
                name,
                old.attributes,
                list(old.rows) + [tuple(r) for r in rows],
            )
        )
        self._version += 1
        self._delta_log.record(
            Delta(
                version=self._version,
                relation=name,
                inserted=tuple(
                    row for row in merged.rows if row not in existing
                ),
            )
        )
        return merged

    def delete_rows(
        self,
        name: str,
        rows: Optional[Iterable[Sequence[object]]] = None,
        where: Optional[Callable[[Tuple[object, ...]], bool]] = None,
    ) -> int:
        """Delete rows from ``name``; returns how many were removed.

        A row is removed when it appears in ``rows`` (compared as
        tuples) *or* satisfies the ``where`` predicate (called with the
        full row tuple in :attr:`Relation.attributes` order).  At least
        one criterion is required -- delete-everything must be spelled
        ``where=lambda row: True``, not implied by omission.  Bumps
        :attr:`version` only when at least one row actually went away,
        so no-op deletes do not invalidate caches.

        >>> db = Database()
        >>> _ = db.add_rows("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)])
        >>> db.delete_rows("R", where=lambda row: row[0] == 1)
        2
        >>> len(db["R"])
        1
        """
        if rows is None and where is None:
            raise ValueError(
                "delete_rows needs rows and/or where; to delete every "
                "row pass where=lambda row: True"
            )
        old = self[name]
        doomed = {tuple(r) for r in rows} if rows is not None else set()
        kept = [
            row
            for row in old.rows
            if row not in doomed and not (where is not None and where(row))
        ]
        removed = len(old) - len(kept)
        if removed:
            kept_set = set(kept)
            self._store(Relation(old.schema, kept))
            self._version += 1
            self._delta_log.record(
                Delta(
                    version=self._version,
                    relation=name,
                    removed=tuple(
                        row for row in old.rows if row not in kept_set
                    ),
                )
            )
        return removed

    def update_rows(
        self,
        name: str,
        where: Callable[[Tuple[object, ...]], bool],
        updates: Mapping[str, object],
    ) -> int:
        """Update rows of ``name`` matching ``where``; returns the
        number of rows rewritten.

        ``updates`` maps attribute name to either a new constant or a
        callable receiving the full old row tuple.  Set semantics
        apply: an update that makes two rows collide stores one copy.
        Bumps :attr:`version` only when some row actually changed.

        >>> db = Database()
        >>> _ = db.add_rows("R", ("a", "b"), [(1, 1), (2, 2)])
        >>> db.update_rows("R", lambda row: row[0] == 2, {"b": 9})
        1
        >>> db["R"].rows
        [(1, 1), (2, 9)]
        """
        old = self[name]
        positions = {
            attr: old.schema.index_of(attr) for attr in updates
        }
        changed = 0
        new_rows: List[Tuple[object, ...]] = []
        for row in old.rows:
            if where(row):
                rewritten = list(row)
                for attr, value in updates.items():
                    rewritten[positions[attr]] = (
                        value(row) if callable(value) else value
                    )
                new = tuple(rewritten)
                if new != row:
                    changed += 1
                new_rows.append(new)
            else:
                new_rows.append(row)
        if changed:
            rewritten_rel = self._store(
                Relation.from_rows(name, old.attributes, new_rows)
            )
            self._version += 1
            old_set, new_set = set(old.rows), set(rewritten_rel.rows)
            self._delta_log.record(
                Delta(
                    version=self._version,
                    relation=name,
                    inserted=tuple(
                        row
                        for row in rewritten_rel.rows
                        if row not in old_set
                    ),
                    removed=tuple(
                        row for row in old.rows if row not in new_set
                    ),
                )
            )
        return changed

    def add_renamed(
        self, source: str, new_name: str, mapping: Mapping[str, str]
    ) -> Relation:
        """Register a renamed copy of ``source`` (for self-joins)."""
        relation = self[source].renamed(new_name, dict(mapping))
        return self.add(relation)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> List[str]:
        return list(self._relations)

    @property
    def total_size(self) -> int:
        """Total number of tuples, the paper's ``|D|``."""
        return sum(len(r) for r in self._relations.values())

    def schema(self) -> Dict[str, Tuple[str, ...]]:
        """Mapping relation name -> attribute tuple."""
        return {
            name: rel.attributes for name, rel in self._relations.items()
        }

    def relation_of(self, attribute: str) -> Relation:
        """The unique relation owning ``attribute``."""
        owner = self._attr_owner.get(attribute)
        if owner is None:
            raise SchemaError(f"attribute {attribute!r} not in database")
        return self._relations[owner]

    def attributes(self) -> List[str]:
        """All attribute names across all relations."""
        return list(self._attr_owner)

    # -- statistics for the estimate-based cost measure ------------------

    def cardinality(self, name: str) -> int:
        return len(self[name])

    def distinct(self, attribute: str) -> int:
        """Distinct count of ``attribute`` in its owning relation."""
        return self.relation_of(attribute).distinct_count(attribute)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Full catalogue snapshot: sizes and per-attribute distincts."""
        out: Dict[str, Dict[str, int]] = {}
        for name, relation in self._relations.items():
            entry = {"__cardinality__": len(relation)}
            for attr in relation.attributes:
                entry[attr] = relation.distinct_count(attr)
            out[name] = entry
        return out
