"""Command-line interface for the FDB engine.

Subcommands:

- ``query``      evaluate an SQL-like SPJ query over CSV relations --
                 or, with ``--connect``, on a remote server;
- ``batch``      run many queries through one plan-cached
                 :class:`~repro.service.QuerySession` (optionally
                 against a saved database, ``--db``, with a disk-backed
                 plan store, ``--plan-store``; ``--connect`` sends the
                 batch to a remote server instead);
- ``serve``      expose a session over TCP (:mod:`repro.net`): arena
                 encoding and a plan store by default, pipelined
                 clients, graceful drain on SIGINT/SIGTERM;
- ``save``       persist a (possibly sharded) database in the binary
                 FDBP format;
- ``load``       inspect a persisted file and optionally query it;
- ``compile``    factorise a query result and save it to a file;
- ``stats``      show f-tree, sizes and costs of a saved factorisation
                 -- or, with ``--connect``, a live server's unified
                 metrics snapshot (``--prometheus`` for scrape text);
- ``explain``    show a query's f-tree and f-plan; ``--profile`` times
                 every restructuring kernel of the arena pipeline;
- ``experiment`` run one of the paper's experiments (1-4);
- ``shell``      a minimal interactive prompt over loaded CSVs.

Example::

    python -m repro.cli query \\
        "SELECT * FROM Orders, Store WHERE o_item = s_item" \\
        --csv data/Orders.csv data/Store.csv
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro import persist
from repro.core import serialize
from repro.costs.cost_model import s_tree
from repro.engine import FDB
from repro.experiments import (
    exp1,
    exp2,
    exp3,
    exp4,
    format_table,
    run_experiment1,
    run_experiment2,
    run_experiment3,
    run_experiment4,
)
from repro.exec import ParallelExecutor, SerialExecutor
from repro.net.protocol import DEFAULT_PORT
from repro.obs import report
from repro.obs.slowlog import SlowQueryLog
from repro.query.parser import parse_query
from repro.relational.budget import Budget, BudgetExceeded
from repro.relational.csvio import load_database
from repro.relational.database import Database
from repro.service.session import QuerySession
from repro.storage import PARTITION_STRATEGIES, ShardedDatabase


def _load(paths: Sequence[str]) -> Database:
    if not paths:
        raise SystemExit("no input relations: pass --csv file.csv ...")
    return load_database(list(paths))


def _load_database_arg(args: argparse.Namespace) -> Database:
    """The input database: ``--db`` (persisted) beats ``--csv``."""
    saved = getattr(args, "db", None)
    if saved:
        try:
            loaded = persist.load(saved)
        except persist.PersistError as exc:
            raise SystemExit(f"cannot load {saved!r}: {exc}")
        if not isinstance(loaded, Database):
            raise SystemExit(
                f"{saved!r} holds a "
                f"{type(loaded).__name__}, not a database"
            )
        return loaded
    return _load(args.csv)


def _print_result(fr, flat: bool, limit: int) -> None:
    print(f"f-tree:\n{fr.tree.pretty()}")
    print(
        f"{fr.count()} tuples, {fr.size()} singletons "
        f"(flat: {fr.flat_data_elements()} values)"
    )
    print(f"s(T) = {s_tree(fr.tree)}")
    if flat:
        for i, row in enumerate(fr.rows()):
            if i >= limit:
                print(f"... ({fr.count()} rows)")
                break
            print(" ", row)
    else:
        text = fr.pretty()
        if len(text) > 2000:
            text = text[:2000] + " ..."
        print(text)


def cmd_query(args: argparse.Namespace) -> int:
    if args.connect:
        return _cmd_query_remote(args)
    db = _load(args.csv)
    fdb = FDB(
        db,
        plan_search=args.planner,
        encoding="arena" if args.arena else "object",
    )
    query = parse_query(args.query)
    start = time.perf_counter()
    fr = fdb.evaluate(query)
    elapsed = time.perf_counter() - start
    _print_result(fr, args.flat, args.limit)
    print(f"evaluated in {elapsed:.4f}s")
    return 0


def _cmd_query_remote(args: argparse.Namespace) -> int:
    from repro.net import NetError, RemoteSession

    try:
        with RemoteSession(args.connect) as client:
            start = time.perf_counter()
            result = client.run(parse_query(args.query))
            elapsed = time.perf_counter() - start
            if result.factorised is not None:
                _print_result(result.factorised, args.flat, args.limit)
            else:
                rows = result.rows()
                print(f"{', '.join(result.attributes)}")
                for i, row in enumerate(rows):
                    if i >= args.limit:
                        print(f"... ({len(rows)} rows)")
                        break
                    print(" ", row)
            host, port = client.address
            print(
                f"evaluated in {elapsed:.4f}s on {host}:{port} "
                f"(engine {result.engine}, server-side "
                f"{result.elapsed:.4f}s)"
            )
    except NetError as exc:
        raise SystemExit(f"remote query failed: {exc}")
    return 0


def _cmd_batch_remote(args: argparse.Namespace) -> int:
    from repro.net import NetError, RemoteSession

    queries = [parse_query(stmt) for stmt in _read_batch_queries(args)]
    queries = queries * args.repeat
    try:
        with RemoteSession(args.connect) as client:
            start = time.perf_counter()
            results = client.run_batch(queries, engine=args.engine)
            elapsed = time.perf_counter() - start
            if args.verbose:
                for i, result in enumerate(results):
                    flag = (
                        "dedup"
                        if result.deduped
                        else ("hit" if result.cached else "miss")
                    )
                    print(
                        f"[{i:3d}] {result.engine:6s} {flag:5s} "
                        f"{result.count():8d} tuples  "
                        f"{result.elapsed:.4f}s  {result.query}"
                    )
            host, port = client.address
            info = client.server_info
            print(
                f"{len(results)} queries in {elapsed:.4f}s "
                f"({len(results) / max(elapsed, 1e-9):.1f} q/s) "
                f"[remote {host}:{port}, {info.get('encoding')} "
                f"encoding]"
            )
            # The remote stats frame is the server's registry
            # snapshot: the same structure session.snapshot() yields
            # locally, rendered by the same formatter.
            for line in report.session_lines(client.stats()):
                print(line)
    except NetError as exc:
        raise SystemExit(f"remote batch failed: {exc}")
    return 0


def _read_batch_queries(args: argparse.Namespace) -> List[str]:
    statements: List[str] = []
    if args.queries:
        if args.queries == "-":
            text = sys.stdin.read()
        else:
            with open(args.queries) as handle:
                text = handle.read()
        for line in text.splitlines():
            line = line.strip().rstrip(";")
            if line and not line.startswith("#"):
                statements.append(line)
    statements.extend(args.sql or [])
    if not statements:
        raise SystemExit(
            "no queries: pass a query file (or '-') or --sql ..."
        )
    return statements


def cmd_batch(args: argparse.Namespace) -> int:
    if args.connect:
        return _cmd_batch_remote(args)
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.cache_size is not None and args.cache_size < 1:
        raise SystemExit(
            f"--cache-size must be >= 1 (omit it for an unbounded "
            f"cache), got {args.cache_size}"
        )
    db = _load_database_arg(args)
    if args.shards > 1:
        if isinstance(db, ShardedDatabase):
            if (
                db.shard_count != args.shards
                or db.strategy != args.strategy
            ):
                raise SystemExit(
                    f"--shards {args.shards} ({args.strategy}) "
                    f"conflicts with the saved layout of {args.db!r}: "
                    f"{db.shard_count} shards ({db.strategy}); omit "
                    f"--shards to use the saved layout, or re-save"
                )
        else:
            db = ShardedDatabase.from_database(
                db, shards=args.shards, strategy=args.strategy
            )
    queries = [parse_query(stmt) for stmt in _read_batch_queries(args)]
    queries = queries * args.repeat
    budget = (
        Budget(timeout_seconds=args.timeout)
        if args.timeout is not None
        else None
    )
    executor = (
        ParallelExecutor(max_workers=args.workers)
        if args.workers > 1
        else SerialExecutor()
    )
    if args.cluster:
        from repro.net.cluster import ReplicatedExecutor

        cluster_workers = [
            part.strip()
            for part in args.cluster.split(",")
            if part.strip()
        ]
        if not cluster_workers:
            raise SystemExit(
                "--cluster needs at least one host:port worker"
            )
        if args.replication_factor < 1:
            raise SystemExit(
                f"--replication-factor must be >= 1, "
                f"got {args.replication_factor}"
            )
        executor = ReplicatedExecutor(
            cluster_workers,
            replication_factor=args.replication_factor,
            flight_path=args.flight_log,
        )
    plan_store = (
        persist.PlanStore(args.plan_store) if args.plan_store else None
    )
    session = QuerySession(
        db,
        plan_search=args.planner,
        fallback_budget=args.fallback_budget,
        budget=budget,
        executor=executor,
        cache_size=args.cache_size,
        plan_store=plan_store,
        encoding="arena" if args.arena else "object",
    )
    start = time.perf_counter()
    try:
        results = session.run_batch(queries, engine=args.engine)
    except BudgetExceeded as exc:
        raise SystemExit(f"batch aborted: {exc}")
    finally:
        session.close()
    elapsed = time.perf_counter() - start
    if args.verbose:
        for i, result in enumerate(results):
            flag = (
                "dedup"
                if result.deduped
                else ("hit" if result.cached else "miss")
            )
            print(
                f"[{i:3d}] {result.engine:6s} {flag:5s} "
                f"{result.count():8d} tuples  "
                f"{result.elapsed:.4f}s  {result.query}"
            )
    layout = []
    if isinstance(db, ShardedDatabase):
        layout.append(f"{db.shard_count} shards ({db.strategy})")
    layout.append(session.executor.describe())
    if args.arena:
        layout.append("arena encoding")
    print(
        f"{len(results)} queries in {elapsed:.4f}s "
        f"({len(results) / max(elapsed, 1e-9):.1f} q/s) "
        f"[{', '.join(layout)}]"
    )
    # Counter reporting goes through the unified registry snapshot --
    # the same lines a remote `batch --connect` renders from the
    # server's stats frame (see repro.obs.report).
    for line in report.session_lines(
        session.snapshot(),
        total_queries=len(results),
        plan_store_path=(
            plan_store.path if plan_store is not None else None
        ),
    ):
        print(line)
    if args.cluster:
        c = executor.counters()
        print(
            f"cluster: {c['healthy_workers']}/{c['workers']} workers "
            f"healthy (R={c['replication_factor']}), "
            f"remote_tasks={c['remote_tasks']} "
            f"retries={c['retries']} "
            f"quarantines={c['quarantines']} "
            f"degrade_to_local={c['degrade_to_local']}"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.net.protocol import ProtocolError
    from repro.net.server import QueryServer

    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    owned_shards = None
    if args.own_shards:
        try:
            owned_shards = sorted(
                {
                    int(part)
                    for part in args.own_shards.split(",")
                    if part.strip()
                }
            )
        except ValueError:
            raise SystemExit(
                f"--own-shards expects comma-separated shard indices, "
                f"got {args.own_shards!r}"
            )
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    db = _load_database_arg(args)
    if args.shards > 1 and not isinstance(db, ShardedDatabase):
        db = ShardedDatabase.from_database(
            db, shards=args.shards, strategy=args.strategy
        )
    executor = (
        ParallelExecutor(max_workers=args.workers)
        if args.workers > 1
        else SerialExecutor()
    )
    # Warm starts by default: every served process shares compiled
    # plans through the disk store (--plan-store '' disables).
    plan_store = (
        persist.PlanStore(args.plan_store) if args.plan_store else None
    )
    slow_log = SlowQueryLog(
        threshold=args.slow_query_threshold,
        path=args.slow_query_log or None,
        max_bytes=args.slow_query_log_max_bytes,
    )
    session = QuerySession(
        db,
        plan_search=args.planner,
        fallback_budget=args.fallback_budget,
        executor=executor,
        cache_size=args.cache_size,
        plan_store=plan_store,
        encoding=args.encoding,
        slow_log=slow_log,
    )

    async def _main() -> int:
        try:
            server = QueryServer(
                session,
                host=args.host,
                port=args.port,
                max_pending=args.max_pending,
                metrics_port=args.metrics_port,
                owned_shards=owned_shards,
            )
        except ProtocolError as exc:
            raise SystemExit(f"--own-shards: {exc}")
        await server.start()
        host, port = server.address
        shape = []
        if isinstance(db, ShardedDatabase):
            shape.append(f"{db.shard_count} shards ({db.strategy})")
        if owned_shards is not None:
            shape.append(
                "owns shards "
                + ",".join(str(i) for i in owned_shards)
            )
        shape.append(session.executor.describe())
        shape.append(f"{args.encoding} encoding")
        if plan_store is not None:
            shape.append(f"plan store at {plan_store.path}")
        print(
            f"repro.net serving {len(db)} relations, "
            f"{db.total_size} tuples on {host}:{port} "
            f"[{', '.join(shape)}]",
            flush=True,
        )
        metrics_addr = server.metrics_address
        if metrics_addr is not None:
            print(
                f"metrics on http://{metrics_addr[0]}:"
                f"{metrics_addr[1]}/metrics",
                flush=True,
            )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop.wait()
        print("draining ...", flush=True)
        await server.drain()
        stats = server.stats
        print(
            f"drained: served {stats.requests} requests "
            f"({stats.queries} queries, {stats.batches} batches) over "
            f"{stats.connections} connections",
            flush=True,
        )
        return 0

    return asyncio.run(_main())


def cmd_save(args: argparse.Namespace) -> int:
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    db = _load(args.csv)
    if args.shards > 1:
        db = ShardedDatabase.from_database(
            db, shards=args.shards, strategy=args.strategy
        )
    persist.save(db, args.output)
    shape = (
        f"{db.shard_count} shards ({db.strategy}), "
        if isinstance(db, ShardedDatabase)
        else ""
    )
    print(
        f"saved {len(db)} relations, {db.total_size} tuples "
        f"({shape}version {db.version}) to {args.output} "
        f"[FDBP format v{persist.FORMAT_VERSION}]"
    )
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    try:
        info = persist.inspect(args.path)
        loaded = persist.load(args.path, mmap=args.mmap)
    except persist.PersistError as exc:
        raise SystemExit(f"cannot load {args.path!r}: {exc}")
    print(f"kind: {info['kind']}")
    if isinstance(loaded, Database):
        shape = (
            f" over {loaded.shard_count} shards ({loaded.strategy})"
            if isinstance(loaded, ShardedDatabase)
            else ""
        )
        print(
            f"{len(loaded)} relations, {loaded.total_size} tuples"
            f"{shape}, version {loaded.version}"
        )
        for relation in loaded:
            print(
                f"  {relation.name}({', '.join(relation.attributes)}): "
                f"{len(relation)} tuples"
            )
        for statement in args.sql or []:
            fr = FDB(loaded).evaluate(parse_query(statement))
            print(f"{statement!r}: {fr.count()} tuples, "
                  f"{fr.size()} singletons")
    else:
        for key, value in sorted(info.items()):
            if key != "kind":
                print(f"  {key}: {value}")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    db = _load(args.csv)
    fdb = FDB(db)
    fr = fdb.evaluate(parse_query(args.query))
    serialize.save(fr, args.output)
    print(
        f"saved {fr.count()} tuples as {fr.size()} singletons "
        f"to {args.output}"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    if args.connect:
        return _cmd_stats_remote(args)
    if not args.factorisation:
        raise SystemExit(
            "pass a saved factorisation, or --connect HOST:PORT for "
            "a live server's metrics"
        )
    fr = serialize.load_path(args.factorisation)
    _print_result(fr, flat=False, limit=0)
    return 0


def _cmd_stats_remote(args: argparse.Namespace) -> int:
    """The unified observability snapshot of a running server."""
    import json

    from repro.net import NetError, RemoteSession

    try:
        with RemoteSession(args.connect) as client:
            if args.prometheus:
                print(client.metrics_text(), end="")
            elif getattr(args, "events", False):
                # The flight recorder's ring, as JSONL -- it travels
                # inside the metrics snapshot (the `flight` collector
                # namespace), so no extra wire frame is needed.
                snapshot = client.metrics()
                flight = snapshot.get("flight") or {}
                for event in flight.get("events") or []:
                    print(
                        json.dumps(event, sort_keys=True, default=str)
                    )
            else:
                snapshot = client.metrics()
                snapshot.pop("id", None)
                print(json.dumps(snapshot, indent=2, sort_keys=True))
    except NetError as exc:
        raise SystemExit(f"remote stats failed: {exc}")
    return 0


def cmd_cluster_status(args: argparse.Namespace) -> int:
    """One terminal's view of a whole worker fleet.

    Scrapes every worker's ``metrics`` frame (bounded timeouts -- a
    dead worker shows up as DOWN with a staleness age, it never hangs
    the poll), merges the snapshots, renders per-worker liveness, the
    shard heat map against the replica chains, and the rebalance
    advisor's recommendations.
    """
    import json

    from repro.obs import report
    from repro.obs.cluster import ClusterFederation, advise

    workers = [
        part.strip() for part in args.workers.split(",") if part.strip()
    ]
    if not workers:
        raise SystemExit(
            "cluster-status needs at least one host:port worker"
        )
    if args.replication_factor < 1:
        raise SystemExit(
            f"--replication-factor must be >= 1, "
            f"got {args.replication_factor}"
        )
    try:
        federation = ClusterFederation(
            workers,
            replication_factor=args.replication_factor,
            connect_timeout=args.timeout,
            request_timeout=args.timeout,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    try:
        while True:
            federation.poll()
            view = federation.view()
            if args.prometheus:
                print(federation.prometheus_text(view), end="")
            elif args.json:
                print(
                    json.dumps(
                        view, indent=2, sort_keys=True, default=str
                    )
                )
            else:
                for line in report.cluster_lines(view, advise(view)):
                    print(line)
            if not args.watch:
                break
            print("", flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        federation.stop()
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Show the f-tree and f-plan a query compiles to -- and, with
    ``--profile``, the per-operator kernel timing of the arena
    pipeline that executes it (the serving-layer twin of fig 7/8)."""
    from repro import ops
    from repro.obs.profile import profile_plan
    from repro.query.query import Query

    db = _load_database_arg(args)
    query = parse_query(args.query)
    fdb = FDB(db, plan_search=args.planner, encoding="arena")
    # Mirror QuerySession.run_on: factorise the base join, apply the
    # constants, then restructure for the equalities via an f-plan --
    # the path whose per-kernel cost --profile exposes.
    base = Query.make(query.relations)
    tree = fdb.optimal_tree(base)
    fr = fdb.factorise_query(base, tree=tree)
    for cond in query.constants:
        if cond.attribute not in fr.tree.attributes():
            raise SystemExit(f"unknown attribute {cond.attribute!r}")
        fr = ops.select_constant(fr, cond)
    pairs = [(eq.left, eq.right) for eq in query.equalities]
    plan = fdb.plan_for(fr.tree, pairs)
    print(f"f-tree (base join):\n{fr.tree.pretty()}")
    if plan.steps:
        print(f"f-plan ({len(plan.steps)} steps, cost {plan.cost}):")
        for i, step in enumerate(plan.steps):
            print(f"  [{i}] {step}")
    else:
        print("f-plan: identity (no restructuring needed)")
    result, profile = profile_plan(plan, fr)
    if query.projection is not None:
        result = ops.project(result, query.projection)
    print(
        f"result: {result.count()} tuples, "
        f"{result.size()} singletons"
    )
    if args.profile:
        print(profile.format_table())
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    number = args.number
    if number == 1:
        rows = run_experiment1(
            relations_values=tuple(args.relations),
            equalities_values=tuple(args.equalities),
            repeats=args.repeats,
        )
        print(format_table(exp1.headers(), exp1.as_cells(rows)))
    elif number == 2:
        rows = run_experiment2(
            k_values=tuple(args.equalities),
            l_values=(1, 2, 3),
            repeats=args.repeats,
        )
        print(format_table(exp2.headers(), exp2.as_cells(rows)))
    elif number == 3:
        rows = run_experiment3(
            sizes=tuple(args.sizes),
            k_values=tuple(args.equalities),
            timeout=args.timeout,
        )
        print(format_table(exp3.headers(), exp3.as_cells(rows)))
    elif number == 4:
        rows = run_experiment4(
            k_values=tuple(args.equalities),
            timeout=args.timeout,
        )
        print(format_table(exp4.headers(), exp4.as_cells(rows)))
    else:
        raise SystemExit(f"no experiment {number}; pick 1-4")
    return 0


def cmd_shell(args: argparse.Namespace) -> int:
    db = _load(args.csv)
    fdb = FDB(db)
    print(f"loaded: {', '.join(db.names)}  (\\q to quit)")
    while True:
        try:
            line = input("fdb> ").strip()
        except EOFError:
            break
        if not line:
            continue
        if line in ("\\q", "quit", "exit"):
            break
        try:
            fr = fdb.evaluate(parse_query(line))
            _print_result(fr, flat=args.flat, limit=args.limit)
        except Exception as exc:  # surface errors, keep the loop
            print(f"error: {exc}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FDB: a query engine for factorised databases",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_csv(p):
        p.add_argument(
            "--csv",
            nargs="+",
            default=[],
            help="CSV relation files (header row = attribute names)",
        )

    def add_arena(p):
        p.add_argument(
            "--arena",
            action="store_true",
            help="evaluate in the flat columnar arena encoding "
            "(identical answers, faster hot paths)",
        )

    def add_connect(p):
        p.add_argument(
            "--connect",
            default=None,
            metavar="HOST:PORT",
            help="evaluate on a running 'repro serve' server instead "
            "of in-process (local data options are ignored)",
        )

    q = sub.add_parser("query", help="evaluate an SPJ query")
    add_csv(q)
    add_connect(q)
    q.add_argument("query")
    q.add_argument(
        "--planner",
        choices=["exhaustive", "greedy"],
        default="exhaustive",
    )
    add_arena(q)
    q.add_argument(
        "--flat", action="store_true", help="print flat rows"
    )
    q.add_argument("--limit", type=int, default=20)
    q.set_defaults(func=cmd_query)

    b = sub.add_parser(
        "batch",
        help="run many queries through one plan-cached session",
    )
    add_csv(b)
    add_connect(b)
    b.add_argument(
        "queries",
        nargs="?",
        help="file with one SPJ query per line ('-' for stdin)",
    )
    b.add_argument(
        "--sql",
        nargs="+",
        help="inline queries (appended to the file's, if any)",
    )
    b.add_argument(
        "--planner",
        choices=["exhaustive", "greedy"],
        default="exhaustive",
    )
    add_arena(b)
    b.add_argument(
        "--engine",
        choices=["auto", "fdb", "flat", "sqlite"],
        default="auto",
    )
    b.add_argument(
        "--fallback-budget",
        type=float,
        default=None,
        help="estimated-singleton cap before falling back to the "
        "flat engine (auto mode)",
    )
    b.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-query budget (seconds) for flat evaluation",
    )
    b.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="repeat the whole workload N times (warms the cache)",
    )
    b.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the database over N shards (storage layer)",
    )
    b.add_argument(
        "--strategy",
        choices=list(PARTITION_STRATEGIES),
        default="hash",
        help="row-placement strategy for --shards > 1",
    )
    b.add_argument(
        "--workers",
        type=int,
        default=1,
        help="evaluate with a parallel executor over N pool workers",
    )
    b.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="LRU bound on the plan caches (default: unbounded)",
    )
    b.add_argument(
        "--db",
        default=None,
        help="run against a database saved with 'repro save' "
        "(overrides --csv; a sharded save keeps its layout)",
    )
    b.add_argument(
        "--plan-store",
        default=None,
        help="directory of a disk-backed plan store; compiled plans "
        "are shared across sessions and processes",
    )
    b.add_argument(
        "--cluster",
        default=None,
        metavar="HOST:PORT,...",
        help="route (query, shard) tasks to these shard workers with "
        "the replicated executor (retry on the next replica, "
        "quarantine, local degrade only when all replicas are down); "
        "workers must serve the same --db",
    )
    b.add_argument(
        "--replication-factor",
        type=int,
        default=2,
        help="replicas per shard on the --cluster hash ring "
        "(default 2, clamped to the worker count)",
    )
    b.add_argument(
        "--flight-log",
        default=None,
        metavar="PATH",
        help="with --cluster: dump the coordinator's flight-recorder "
        "ring to this JSONL file automatically on loud faults "
        "(degrade-to-local, retry exhaustion)",
    )
    b.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print one line per query",
    )
    b.set_defaults(func=cmd_batch)

    srv = sub.add_parser(
        "serve",
        help="serve a session over TCP (repro.net query server)",
    )
    add_csv(srv)
    srv.add_argument(
        "--db",
        default=None,
        help="serve a database saved with 'repro save' (overrides "
        "--csv; a sharded save keeps its layout and enables the "
        "RemoteExecutor shard-worker protocol)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help="TCP port (0 = ephemeral, printed on startup)",
    )
    srv.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition a --csv database over N shards",
    )
    srv.add_argument(
        "--strategy",
        choices=list(PARTITION_STRATEGIES),
        default="hash",
    )
    srv.add_argument(
        "--workers",
        type=int,
        default=1,
        help="evaluate with a parallel executor over N pool workers",
    )
    srv.add_argument(
        "--planner",
        choices=["exhaustive", "greedy"],
        default="exhaustive",
    )
    srv.add_argument(
        "--encoding",
        choices=["arena", "object"],
        default="arena",
        help="physical result encoding (default: arena, the hot one)",
    )
    srv.add_argument(
        "--plan-store",
        default=".repro-plans",
        help="disk-backed plan store directory for cross-process warm "
        "starts (default '.repro-plans'; pass '' to disable)",
    )
    srv.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="LRU bound on the in-memory plan caches",
    )
    srv.add_argument(
        "--fallback-budget",
        type=float,
        default=None,
        help="estimated-singleton cap before auto queries fall back "
        "to the flat engine",
    )
    srv.add_argument(
        "--max-pending",
        type=int,
        default=128,
        help="admission bound: in-flight requests before the server "
        "stops reading (TCP backpressure)",
    )
    srv.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="also serve Prometheus text metrics over HTTP on this "
        "port (GET /metrics)",
    )
    srv.add_argument(
        "--slow-query-threshold",
        type=float,
        default=1.0,
        help="seconds above which a query lands in the slow-query "
        "log (default 1.0)",
    )
    srv.add_argument(
        "--slow-query-log",
        default=None,
        metavar="PATH",
        help="append slow-query entries as JSON lines to this file "
        "(in-memory ring buffer only, when omitted)",
    )
    srv.add_argument(
        "--slow-query-log-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="rotate the slow-query log file when it would cross N "
        "bytes (keep-one policy: the previous file moves to "
        "PATH.1); unbounded when omitted",
    )
    srv.add_argument(
        "--own-shards",
        default=None,
        metavar="I,J,...",
        help="answer shard requests only for these shard indices "
        "(the cluster ownership contract; other shards are refused "
        "with OwnershipError so a coordinator retries a replica)",
    )
    srv.set_defaults(func=cmd_serve)

    sv = sub.add_parser(
        "save",
        help="persist a (possibly sharded) database in FDBP format",
    )
    add_csv(sv)
    sv.add_argument("-o", "--output", required=True)
    sv.add_argument(
        "--shards",
        type=int,
        default=1,
        help="save sharded: per-shard files plus a manifest",
    )
    sv.add_argument(
        "--strategy",
        choices=list(PARTITION_STRATEGIES),
        default="hash",
    )
    sv.set_defaults(func=cmd_save)

    ld = sub.add_parser(
        "load", help="inspect (and query) a persisted FDBP file"
    )
    ld.add_argument("path")
    ld.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map arena blobs (zero-copy column views) "
        "instead of reading them",
    )
    ld.add_argument(
        "--sql",
        nargs="+",
        help="queries to evaluate against a loaded database",
    )
    ld.set_defaults(func=cmd_load)

    c = sub.add_parser(
        "compile", help="factorise a query result to a file"
    )
    add_csv(c)
    c.add_argument("query")
    c.add_argument("-o", "--output", required=True)
    c.set_defaults(func=cmd_compile)

    s = sub.add_parser(
        "stats",
        help="inspect a saved factorisation, or a live server's "
        "unified metrics snapshot (--connect)",
    )
    s.add_argument("factorisation", nargs="?")
    add_connect(s)
    s.add_argument(
        "--prometheus",
        action="store_true",
        help="with --connect: print the Prometheus text exposition "
        "instead of the JSON snapshot",
    )
    s.add_argument(
        "--events",
        action="store_true",
        help="with --connect: dump the server's flight-recorder ring "
        "(structured fault events) as JSON lines",
    )
    s.set_defaults(func=cmd_stats)

    cs = sub.add_parser(
        "cluster-status",
        help="federate a worker fleet's metrics into one view: "
        "per-worker liveness, merged counters, the shard heat map "
        "and rebalance advice",
    )
    cs.add_argument(
        "workers",
        metavar="HOST:PORT,...",
        help="comma-separated worker addresses to scrape",
    )
    cs.add_argument(
        "--replication-factor",
        type=int,
        default=2,
        help="replicas per shard on the ring the heat map is drawn "
        "against (default 2; match the coordinator's)",
    )
    cs.add_argument(
        "--watch",
        action="store_true",
        help="keep polling and re-rendering every --interval seconds",
    )
    cs.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between --watch polls (default 2.0)",
    )
    cs.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-worker scrape bound in seconds (default 5.0); a "
        "dead worker shows as DOWN, it never hangs the poll",
    )
    cs.add_argument(
        "--prometheus",
        action="store_true",
        help="print the worker-labelled Prometheus exposition "
        "instead of the text report",
    )
    cs.add_argument(
        "--json",
        action="store_true",
        help="print the raw federated view as JSON",
    )
    cs.set_defaults(func=cmd_cluster_status)

    ex = sub.add_parser(
        "explain",
        help="show a query's f-tree and f-plan; --profile times "
        "every restructuring kernel",
    )
    add_csv(ex)
    ex.add_argument("query")
    ex.add_argument(
        "--db",
        default=None,
        help="explain against a database saved with 'repro save' "
        "(overrides --csv)",
    )
    ex.add_argument(
        "--planner",
        choices=["exhaustive", "greedy"],
        default="exhaustive",
    )
    ex.add_argument(
        "--profile",
        action="store_true",
        help="execute the plan one kernel at a time and print the "
        "per-operator timing table",
    )
    ex.set_defaults(func=cmd_explain)

    e = sub.add_parser(
        "experiment", help="run a Section 5 experiment"
    )
    e.add_argument("number", type=int, choices=[1, 2, 3, 4])
    e.add_argument(
        "--relations", type=int, nargs="+", default=[2, 4, 6]
    )
    e.add_argument(
        "--equalities", type=int, nargs="+", default=[2, 3]
    )
    e.add_argument(
        "--sizes", type=int, nargs="+", default=[1000]
    )
    e.add_argument("--repeats", type=int, default=2)
    e.add_argument("--timeout", type=float, default=30.0)
    e.set_defaults(func=cmd_experiment)

    sh = sub.add_parser("shell", help="interactive query prompt")
    add_csv(sh)
    sh.add_argument("--flat", action="store_true")
    sh.add_argument("--limit", type=int, default=20)
    sh.set_defaults(func=cmd_shell)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
