"""Multi-host shard execution: ``ParallelExecutor`` over the wire.

:class:`RemoteExecutor` closes the ROADMAP's "distributing shards over
multiple hosts" item.  It is an :class:`~repro.exec.Executor`, so a
:class:`~repro.service.session.QuerySession` adopts it like any other
(``QuerySession(db, executor=RemoteExecutor([...]))``), and it speaks
the ``shard`` / ``execute`` half of the wire protocol to a fleet of
*shard workers* -- ordinary ``repro serve`` processes, each of which
loaded the same sharded database from its per-shard FDBP files
(``repro serve --db saved-dir/``).

The execution contract is exactly
:class:`~repro.exec.ParallelExecutor`'s, with hosts in place of pool
processes:

- plans are compiled once in the coordinator (cache- and store-aware,
  via the session's ``compile`` hook);
- each (query, shard) pair fans out to the worker that owns the shard
  (``shard s -> workers[s % n]`` by default); the worker evaluates the
  shard view **without** projection and returns the partial result
  factorised;
- the coordinator recombines the parts with
  :func:`repro.ops.union.union_all` and applies the projection once --
  the same recombination, so the differential guarantees carry over;
- on an *unsharded* database, whole queries round-robin across
  workers instead (``execute`` messages, projection applied remotely).

Degradation: a worker that cannot be reached (dead on connect, lost
mid-query, or serving a different database version) is marked lost and
its work is **re-executed locally** on the coordinator's own copy of
the database -- the answer is identical, only slower -- and counted in
:attr:`RemoteExecutor.local_fallbacks`.  A fleet of zero live workers
therefore degrades to serial local execution, never to an error.
Connection loss is permanent until :meth:`RemoteExecutor.invalidate`;
a *version mismatch* is re-probed at every batch, because a worker
that reloads the right snapshot comes back on its own.

For replica-aware routing with retry/backoff/quarantine semantics --
the cluster tier proper -- see
:class:`repro.net.cluster.ReplicatedExecutor`, which builds on this
executor.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import List, Optional, Sequence, Tuple

from repro.exec import worker as worker_mod
from repro.exec.executor import Executor
from repro.net.client import Address, NetError, RemoteSession, parse_address
from repro.obs import trace as obs_trace
from repro.query.query import Query
from repro.storage.sharded import ShardedDatabase


class RemoteExecutor(Executor):
    """Fan (query, shard) evaluation out over shard-worker servers.

    Parameters
    ----------
    workers:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        tuples).  Connections are opened lazily and re-used.
    timeout:
        Seconds to wait for each remote evaluation before treating the
        worker as lost.
    connect_timeout:
        Seconds to wait for each worker connect + hello.
    """

    name = "remote"

    def __init__(
        self,
        workers: Sequence[Address],
        timeout: Optional[float] = 60.0,
        connect_timeout: float = 10.0,
    ) -> None:
        if not workers:
            raise ValueError("RemoteExecutor needs at least one worker")
        self.addresses: List[Tuple[str, int]] = [
            parse_address(w) for w in workers
        ]
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._sessions: List[Optional[RemoteSession]] = [None] * len(
            self.addresses
        )
        #: Per-worker loss state: False (live), "conn" (unreachable --
        #: permanent until invalidate()) or "version" (serving another
        #: database snapshot -- re-probed at the next batch, because a
        #: worker that reloads comes back on its own).
        self._lost: List[object] = [False] * len(self.addresses)
        #: Monotone counters.
        self.remote_tasks = 0
        self.local_fallbacks = 0
        self.lost_workers = 0

    # -- worker fleet ------------------------------------------------------

    @property
    def live_workers(self) -> int:
        return sum(1 for lost in self._lost if not lost)

    def describe(self) -> str:
        return (
            f"remote ({len(self.addresses)} workers, "
            f"{self.live_workers} live)"
        )

    def _mark_lost(self, index: int, reason: str = "conn") -> None:
        if not self._lost[index]:
            self._lost[index] = reason
            self.lost_workers += 1
        session = self._sessions[index]
        self._sessions[index] = None
        if session is not None:
            session.close()

    def _revive_version_mismatches(self) -> None:
        """Give version-mismatched workers a fresh chance this batch.

        A mismatch is transient by nature -- the worker may reload the
        right snapshot, or this coordinator may catch up to the
        worker's -- so pinning it dead for the executor's lifetime
        turned one stale hello into permanent local fallbacks.  The
        reconnect in :meth:`_session_for` re-checks the hello; a still-
        mismatched worker is simply marked again.
        """
        for index, reason in enumerate(self._lost):
            if reason == "version":
                self._lost[index] = False

    def _session_for(self, index: int, db_version: int):
        """A live, version-compatible connection to worker ``index``,
        or ``None``."""
        if self._lost[index]:
            return None
        session = self._sessions[index]
        if session is None or session.closed:
            try:
                session = RemoteSession(
                    self.addresses[index],
                    timeout=self.timeout,
                    connect_timeout=self.connect_timeout,
                )
            except NetError:
                self._mark_lost(index)
                return None
            self._sessions[index] = session
        if session.server_info.get("db_version") != db_version:
            # The worker answers for a different snapshot; using it
            # would silently mix database versions.  Skip it for this
            # batch (re-probed next batch -- see
            # _revive_version_mismatches).
            self._mark_lost(index, "version")
            return None
        return session

    def _pick(self, preferred: int, db_version: int):
        """The preferred worker, else any live one: (index, session)."""
        n = len(self.addresses)
        for offset in range(n):
            index = (preferred + offset) % n
            session = self._session_for(index, db_version)
            if session is not None:
                return index, session
        return None, None

    def invalidate(self) -> None:
        """Database version moved: drop connections so the version
        check re-runs against each worker's hello."""
        for index, session in enumerate(self._sessions):
            self._sessions[index] = None
            if session is not None:
                session.close()

    def close(self) -> None:
        self.invalidate()

    # -- execution ---------------------------------------------------------

    def execute(self, session, queries: Sequence[Query], engine: str):
        if not queries:
            return []
        if engine in ("flat", "sqlite"):
            return [
                session._execute_serial(query, engine)
                for query in queries
            ]
        database = session.database
        version = database.version
        self._revive_version_mismatches()
        sharded = (
            isinstance(database, ShardedDatabase)
            and database.shard_count > 1
        )
        plans = [session.compile(query) for query in queries]

        # Fan out: submissions return futures, so every worker is busy
        # before the first result is awaited.
        jobs: List[Tuple[str, object]] = []
        for query, (plan, hit) in zip(queries, plans):
            if engine == "auto" and session._would_explode(plan):
                jobs.append(("fallback", None))
                continue
            # Delta-maintained result cache: a warm entry needs no
            # fan-out at all (catch-up runs on the coordinator).
            serve_start = time.perf_counter()
            served = session._serve_cached(query)
            if served is not None:
                jobs.append(
                    ("served", (served, time.perf_counter() - serve_start))
                )
            elif sharded:
                fanout = database.fanout_relation(query.relations)
                parts = [
                    self._submit_shard(
                        query, plan.tree, index, fanout, version
                    )
                    for index in range(database.shard_count)
                ]
                jobs.append(("shards", (fanout, parts)))
            else:
                jobs.append(
                    ("full", self._submit_full(query, plan.tree, version))
                )

        results = []
        for query, (plan, hit), (kind, payload) in zip(
            queries, plans, jobs
        ):
            if kind == "fallback":
                results.append(
                    session._fallback_result(
                        query, time.perf_counter(), cached=hit
                    )
                )
                continue
            if kind == "served":
                fr, elapsed = payload
                results.append(
                    session._wrap_fdb_result(
                        query, fr, cached=True, elapsed=elapsed
                    )
                )
                continue
            if kind == "full":
                # Whole-query results arrive projected from the
                # worker, so they cannot seed the (unprojected)
                # result cache; only the sharded path does.
                elapsed, fr = self._gather_full(
                    session, query, plan.tree, payload
                )
            else:
                fanout, submitted = payload
                parts: List = []
                slowest = 0.0
                for index, pending in enumerate(submitted):
                    seconds, part = self._gather_shard(
                        session, query, plan.tree, index, fanout, pending
                    )
                    slowest = max(slowest, seconds)
                    parts.append(part)
                combine_start = time.perf_counter()
                fr = worker_mod.combine_shards(
                    parts,
                    query,
                    session.check_invariants,
                    project=False,
                )
                session._cache_result(query, plan.tree, fr)
                fr = worker_mod.project_result(
                    fr, query, session.check_invariants
                )
                elapsed = slowest + (
                    time.perf_counter() - combine_start
                )
            results.append(
                session._wrap_fdb_result(
                    query, fr, cached=hit, elapsed=elapsed
                )
            )
        return results

    # -- submission / gathering with degradation ---------------------------

    def _submit_shard(
        self, query: Query, tree, index: int, fanout: str, version: int
    ):
        """(worker index, future) or None when no worker took it."""
        worker_index, remote = self._pick(index, version)
        if remote is None:
            return None
        try:
            future = remote.submit_shard(query, tree, index, fanout)
        except NetError:
            self._mark_lost(worker_index)
            return None
        self.remote_tasks += 1
        return worker_index, future

    def _submit_full(self, query: Query, tree, version: int):
        worker_index, remote = self._pick(self.remote_tasks, version)
        if remote is None:
            return None
        try:
            future = remote.submit_execute(query, tree)
        except NetError:
            self._mark_lost(worker_index)
            return None
        self.remote_tasks += 1
        return worker_index, future

    def _gather_shard(
        self, session, query: Query, tree, index: int, fanout: str, pending
    ):
        if pending is not None:
            worker_index, future = pending
            try:
                seconds, part, spans = future.result(self.timeout)
            except (NetError, TimeoutError, _FutureTimeout, OSError):
                self._mark_lost(worker_index)
            else:
                self._absorb_spans(worker_index, spans)
                return seconds, part
        # Degrade: evaluate this shard on the coordinator's own copy.
        # The fallback gets its own span so a trace shows *where* the
        # work really ran when a worker was lost.
        self.local_fallbacks += 1
        with obs_trace.span("shard-local-fallback", shard=index):
            return worker_mod.timed_call(
                worker_mod.evaluate_shard,
                session.database,
                session.check_invariants,
                query,
                tree,
                index,
                fanout,
                session.encoding,
            )

    def _gather_full(self, session, query: Query, tree, pending):
        if pending is not None:
            worker_index, future = pending
            try:
                seconds, fr, spans = future.result(self.timeout)
            except (NetError, TimeoutError, _FutureTimeout, OSError):
                self._mark_lost(worker_index)
            else:
                self._absorb_spans(worker_index, spans)
                return seconds, fr
        self.local_fallbacks += 1
        with obs_trace.span("execute-local-fallback"):
            return worker_mod.timed_call(
                worker_mod.evaluate_full,
                session.database,
                session.check_invariants,
                query,
                tree,
                session.encoding,
            )

    @staticmethod
    def _absorb_spans(worker_index: int, spans) -> None:
        """Merge one remote part's span records into the active trace,
        prefixed by the worker that produced them."""
        trace = obs_trace.current()
        if trace is not None and spans:
            trace.extend(spans, prefix=f"remote[{worker_index}]:")
