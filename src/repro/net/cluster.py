"""The cluster tier: replicated shard ownership with fault tolerance.

:class:`RemoteExecutor` made multi-host execution *possible*; this
module makes it *survivable*.  Two pieces:

- :class:`ClusterMap` -- a consistent-hash ring assigning each shard
  of a sharded database to ``replication_factor`` distinct replica
  workers.  The ring is derived from nothing but the worker addresses
  and the shard count (which the per-shard FDBP manifest names, see
  :func:`ClusterMap.from_manifest`), so every coordinator and every
  driver computes the *same* assignment without coordination, and a
  membership change moves only ~1/N of the shards
  (:meth:`ClusterMap.rebalance` yields the per-worker ``own`` /
  ``disown`` delta that the wire frames of the same name carry).

- :class:`ReplicatedExecutor` -- a drop-in
  :class:`~repro.exec.executor.Executor` that routes each
  (query, shard) task to the shard's replicas in ring order and
  *retries on the next replica* -- with per-attempt timeouts and
  jittered exponential backoff -- on connection loss, timeout or
  version mismatch.  A failing worker is **quarantined** behind a
  half-open health probe (the quarantine window doubles on repeated
  failures; after it expires exactly one trial request is allowed
  through).  Only when *every* replica of a shard is down does the
  coordinator evaluate the shard locally, and then loudly: a
  ``degrade-to-local`` span plus the ``degrade_to_local`` counter --
  degrading is correct but must never be silent, because a degraded
  cluster is one coordinator doing all the work.

Ownership is a *serving contract*, not a data-placement one: a worker
process still loads the full sharded directory (a shard view joins
its fan-out partition against full copies of every other relation, so
partial loading would change answers), but it only *answers* ``shard``
requests for shards it owns -- everything else is refused with an
``OwnershipError`` the coordinator treats as a routing miss, not a
sick worker.  FDBP shard files are small (results and relations
travel factorised), which is exactly what makes R-way replication of
the serving duty cheap.
"""

from __future__ import annotations

import hashlib
import random
import time
from bisect import bisect_right
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exec import worker as worker_mod
from repro.net.client import (
    Address,
    NetError,
    RemoteSession,
    parse_address,
)
from repro.net.remote import RemoteExecutor
from repro.obs import trace as obs_trace
from repro.obs.flight import FlightRecorder
from repro.query.query import Query

__all__ = ["ClusterMap", "ReplicatedExecutor"]


def _ring_point(key: str) -> int:
    """A stable, well-spread 64-bit ring position for ``key``.

    Hashlib (not ``hash``) so every process -- coordinator, driver,
    CI script -- agrees on the ring without ``PYTHONHASHSEED``
    ceremony.
    """
    digest = hashlib.blake2b(
        key.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ClusterMap:
    """Consistent-hash assignment of shards to R replica workers.

    Parameters
    ----------
    workers:
        Worker addresses (``"host:port"`` strings or tuples).  Order
        does not matter -- the ring depends only on the address
        *values*.
    shard_count:
        Number of shards being served (``manifest["shards"]`` of a
        sharded FDBP directory; see :meth:`from_manifest`).
    replication_factor:
        Distinct workers per shard.  Clamped to the worker count.
    points_per_worker:
        Virtual nodes per worker on the ring; more points = smoother
        balance and smaller movement on membership changes.
    """

    def __init__(
        self,
        workers: Sequence[Address],
        shard_count: int,
        replication_factor: int = 2,
        points_per_worker: int = 64,
    ) -> None:
        addresses = [parse_address(w) for w in workers]
        if not addresses:
            raise ValueError("ClusterMap needs at least one worker")
        if shard_count < 1:
            raise ValueError(
                f"shard_count must be >= 1, got {shard_count}"
            )
        if replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, "
                f"got {replication_factor}"
            )
        if points_per_worker < 1:
            raise ValueError("points_per_worker must be >= 1")
        self.workers: Tuple[str, ...] = tuple(
            f"{host}:{port}" for host, port in addresses
        )
        if len(set(self.workers)) != len(self.workers):
            raise ValueError(
                f"duplicate worker addresses in {self.workers}"
            )
        self.shard_count = int(shard_count)
        self.replication_factor = min(
            int(replication_factor), len(self.workers)
        )
        self.points_per_worker = int(points_per_worker)
        ring: List[Tuple[int, str]] = []
        for worker in self.workers:
            for v in range(self.points_per_worker):
                ring.append((_ring_point(f"{worker}#{v}"), worker))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _ in ring]

    @classmethod
    def from_manifest(
        cls,
        path: str,
        workers: Sequence[Address],
        replication_factor: int = 2,
        **kwargs: Any,
    ) -> "ClusterMap":
        """A ring over the shard count of a saved sharded directory
        (reads only ``manifest.fdbp``, no shard data)."""
        from repro.persist import load_shard_manifest

        manifest = load_shard_manifest(path)
        return cls(
            workers,
            int(manifest["shards"]),
            replication_factor,
            **kwargs,
        )

    def replicas_for(self, shard: int) -> Tuple[str, ...]:
        """The shard's replica workers, in ring (preference) order."""
        if not 0 <= shard < self.shard_count:
            raise ValueError(
                f"shard {shard} out of range 0..{self.shard_count - 1}"
            )
        start = bisect_right(
            self._points, _ring_point(f"shard:{shard}")
        )
        chosen: List[str] = []
        total = len(self._ring)
        for step in range(total):
            worker = self._ring[(start + step) % total][1]
            if worker not in chosen:
                chosen.append(worker)
                if len(chosen) == self.replication_factor:
                    break
        return tuple(chosen)

    def assignments(self) -> Dict[str, Tuple[int, ...]]:
        """``worker -> (owned shards)`` covering every worker (an
        unloaded worker maps to an empty tuple)."""
        owned: Dict[str, List[int]] = {w: [] for w in self.workers}
        for shard in range(self.shard_count):
            for worker in self.replicas_for(shard):
                owned[worker].append(shard)
        return {w: tuple(shards) for w, shards in owned.items()}

    def rebalance(
        self, workers: Sequence[Address]
    ) -> Tuple["ClusterMap", Dict[str, Dict[str, Tuple[int, ...]]]]:
        """The map for a changed membership, plus the movement delta.

        Returns ``(new_map, {worker: {"own": (...), "disown": (...)}})``
        covering every worker present in either membership whose owned
        set changed -- exactly the ``own``/``disown`` frames a
        coordinator pushes.  Consistent hashing keeps the delta small:
        only shards adjacent to the joining/leaving worker's ring
        points move.
        """
        new = ClusterMap(
            workers,
            self.shard_count,
            self.replication_factor,
            self.points_per_worker,
        )
        before = self.assignments()
        after = new.assignments()
        delta: Dict[str, Dict[str, Tuple[int, ...]]] = {}
        for worker in sorted(set(before) | set(after)):
            was = set(before.get(worker, ()))
            now = set(after.get(worker, ()))
            own = tuple(sorted(now - was))
            disown = tuple(sorted(was - now))
            if own or disown:
                delta[worker] = {"own": own, "disown": disown}
        return new, delta

    def __repr__(self) -> str:
        return (
            f"ClusterMap({len(self.workers)} workers, "
            f"{self.shard_count} shards, "
            f"R={self.replication_factor})"
        )


class ReplicatedExecutor(RemoteExecutor):
    """Fault-tolerant fan-out over replicated shard workers.

    The execution contract is :class:`RemoteExecutor`'s (plans
    compiled once on the coordinator, per-shard parts recombined by
    ``ops.union``, answers byte-identical to local evaluation); only
    the routing changes:

    - each (query, shard) goes to the shard's first healthy replica
      on the :class:`ClusterMap` ring;
    - a failed attempt (connection loss, per-attempt timeout, server
      error) **retries on the next replica**, after a jittered
      exponential backoff, under a ``remote[i]:retry`` span;
    - a worker that fails is **quarantined** for
      ``quarantine_seconds`` (doubling per consecutive failure, capped
      at ``quarantine_cap``); when the window expires the next attempt
      is the half-open probe -- one trial reconnect that either
      restores the worker or re-quarantines it for longer;
    - a worker whose hello advertises ``owned_shards`` is only routed
      shards it owns; an ``OwnershipError`` response is a routing miss
      (retry next replica), never a quarantine;
    - a version-mismatched worker is skipped for the current batch and
      re-probed on the next (the executor-level twin of
      :meth:`RemoteExecutor._revive_version_mismatches`);
    - only when **all** replicas of a shard failed does the shard run
      locally, under a ``degrade-to-local`` span and counter.

    Counters surface through the session registry's ``cluster``
    namespace (``registry.snapshot()``, the ``stats``/``metrics`` wire
    frames, and the Prometheus endpoint).
    """

    name = "replicated"

    def __init__(
        self,
        workers: Sequence[Address],
        replication_factor: int = 2,
        timeout: Optional[float] = 60.0,
        connect_timeout: float = 10.0,
        attempt_timeout: Optional[float] = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_jitter: float = 0.5,
        quarantine_seconds: float = 5.0,
        quarantine_cap: float = 60.0,
        points_per_worker: int = 64,
        seed: Optional[int] = None,
        flight_path: Optional[str] = None,
    ) -> None:
        super().__init__(
            workers, timeout=timeout, connect_timeout=connect_timeout
        )
        self.replication_factor = max(1, int(replication_factor))
        #: Per-attempt wait; the total per-task budget is roughly
        #: R * (attempt_timeout + backoff), after which the task
        #: degrades to local evaluation.
        self.attempt_timeout = (
            attempt_timeout if attempt_timeout is not None else timeout
        )
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = min(max(backoff_jitter, 0.0), 1.0)
        self.quarantine_seconds = quarantine_seconds
        self.quarantine_cap = quarantine_cap
        self.points_per_worker = points_per_worker
        self._rng = random.Random(seed)
        self._keys = [f"{h}:{p}" for h, p in self.addresses]
        self._index_of = {k: i for i, k in enumerate(self._keys)}
        self._maps: Dict[int, ClusterMap] = {}
        self._shard_count: Optional[int] = None
        n = len(self.addresses)
        self._quarantined_until = [0.0] * n
        self._quarantine_streak = [0] * n
        self._version_skew = [False] * n
        self._batch_version: Optional[int] = None
        self._registry = None
        #: Monotone counters (on top of the inherited remote_tasks /
        #: local_fallbacks / lost_workers).
        self.retries = 0
        self.timeouts = 0
        self.connect_failures = 0
        self.worker_errors = 0
        self.version_mismatches = 0
        self.ownership_misses = 0
        self.quarantines = 0
        self.probes = 0
        self.probe_recoveries = 0
        self.probe_failures = 0
        self.degrade_to_local = 0
        self.rebalances = 0
        #: The same fault counters attributed per worker address, so a
        #: multi-worker incident names its victims instead of only a
        #: fleet-wide aggregate.
        self._per_worker: Dict[str, Dict[str, int]] = {}
        #: The coordinator-side fault narrative (see repro.obs.flight);
        #: ``flight_path`` makes loud faults (degrade-to-local, retry
        #: exhaustion) dump the ring to disk the moment they happen.
        self.flight = FlightRecorder(path=flight_path)

    # -- fleet state -------------------------------------------------------

    @property
    def live_workers(self) -> int:
        now = time.monotonic()
        return sum(
            1 for until in self._quarantined_until if until <= now
        )

    @property
    def quarantined_workers(self) -> int:
        now = time.monotonic()
        return sum(
            1 for until in self._quarantined_until if until > now
        )

    def describe(self) -> str:
        return (
            f"replicated ({len(self.addresses)} workers, "
            f"R={self.replication_factor}, "
            f"{self.live_workers} healthy)"
        )

    def counters(self) -> Dict[str, Any]:
        """The ``cluster`` collector namespace (see repro.obs)."""
        return {
            "workers": len(self.addresses),
            "replication_factor": self.replication_factor,
            "healthy_workers": self.live_workers,
            "quarantined_workers": self.quarantined_workers,
            "remote_tasks": self.remote_tasks,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "connect_failures": self.connect_failures,
            "worker_errors": self.worker_errors,
            "version_mismatches": self.version_mismatches,
            "ownership_misses": self.ownership_misses,
            "quarantines": self.quarantines,
            "probes": self.probes,
            "probe_recoveries": self.probe_recoveries,
            "probe_failures": self.probe_failures,
            "degrade_to_local": self.degrade_to_local,
            "rebalances": self.rebalances,
            "per_worker": {
                key: dict(tallies)
                for key, tallies in self._per_worker.items()
            },
        }

    def _tag(self, index_or_key, name: str) -> None:
        """Attribute one fault-counter increment to a worker."""
        key = (
            self._keys[index_or_key]
            if isinstance(index_or_key, int)
            else str(index_or_key)
        )
        tallies = self._per_worker.setdefault(key, {})
        tallies[name] = tallies.get(name, 0) + 1

    def _ensure_registered(self, session) -> None:
        registry = getattr(session, "registry", None)
        if registry is None or registry is self._registry:
            return
        registry.register("cluster", self.counters)
        registry.register("flight", self.flight.counters)
        self._registry = registry

    def invalidate(self) -> None:
        super().invalidate()
        # A database-version move is the classic mismatch trigger;
        # give skewed workers a fresh hello.
        self._version_skew = [False] * len(self.addresses)

    # -- the consistent-hash ring ------------------------------------------

    def _map_for(self, shard_count: int) -> ClusterMap:
        got = self._maps.get(shard_count)
        if got is None:
            got = self._maps[shard_count] = ClusterMap(
                self._keys,
                shard_count,
                self.replication_factor,
                self.points_per_worker,
            )
        self._shard_count = shard_count
        return got

    def _replica_chain(self, shard: int) -> List[int]:
        """Worker indices to try for ``shard``, in preference order."""
        count = self._shard_count or 1
        if shard >= count:
            count = shard + 1
        return [
            self._index_of[key]
            for key in self._map_for(count).replicas_for(shard)
        ]

    def _full_chain(self) -> List[int]:
        """Round-robin chain for whole-query (unsharded) routing."""
        n = len(self.addresses)
        start = self.remote_tasks % n
        return [(start + k) % n for k in range(n)]

    # -- membership / rebalancing ------------------------------------------

    def set_workers(
        self,
        workers: Sequence[Address],
        shard_count: Optional[int] = None,
    ) -> Dict[str, Dict[str, Tuple[int, ...]]]:
        """Adopt a changed membership and push the ownership delta.

        Recomputes the ring for the new worker set, sends each
        reachable worker its ``own``/``disown`` frames (best-effort:
        an unreachable worker simply keeps its old contract -- its
        hello still advertises what it owns, so routing stays
        correct), then swaps the executor's fleet state, keeping live
        connections of retained workers.  Returns the delta that was
        pushed.
        """
        new_addresses = [parse_address(w) for w in workers]
        if not new_addresses:
            raise ValueError("set_workers needs at least one worker")
        new_keys = [f"{h}:{p}" for h, p in new_addresses]
        count = shard_count or self._shard_count
        delta: Dict[str, Dict[str, Tuple[int, ...]]] = {}
        if count:
            delta = self._map_for(count).rebalance(new_keys)[1]
        old_sessions = dict(zip(self._keys, self._sessions))
        self._sessions = [None] * len(self._keys)  # detach, keep open
        pushed: Dict[str, Dict[str, Tuple[int, ...]]] = {}
        for key, change in delta.items():
            session = old_sessions.get(key)
            opened_here = False
            if session is None or session.closed:
                try:
                    session = RemoteSession(
                        key,
                        timeout=self.timeout,
                        connect_timeout=self.connect_timeout,
                    )
                    opened_here = True
                except NetError:
                    continue
                if key in old_sessions or key in new_keys:
                    old_sessions[key] = session
            try:
                if change["own"]:
                    session.own_shards(change["own"])
                if change["disown"]:
                    session.disown_shards(change["disown"])
                pushed[key] = change
            except NetError:
                continue
            finally:
                if opened_here and key not in new_keys:
                    session.close()
        # Swap in the new fleet, carrying over live sessions and
        # quarantine state of retained workers.
        old_state = {
            key: (
                old_sessions.get(key),
                self._quarantined_until[i],
                self._quarantine_streak[i],
            )
            for i, key in enumerate(self._keys)
        }
        self.addresses = new_addresses
        self._keys = new_keys
        self._index_of = {k: i for i, k in enumerate(new_keys)}
        n = len(new_keys)
        self._sessions = [None] * n
        self._lost = [False] * n
        self._quarantined_until = [0.0] * n
        self._quarantine_streak = [0] * n
        self._version_skew = [False] * n
        for i, key in enumerate(new_keys):
            session, until, streak = old_state.get(key, (None, 0.0, 0))
            self._sessions[i] = session
            self._quarantined_until[i] = until
            self._quarantine_streak[i] = streak
        for key, session in old_sessions.items():
            if key not in self._index_of and session is not None:
                session.close()
        self._maps.clear()
        self.rebalances += 1
        self.flight.record(
            "rebalance",
            workers=list(new_keys),
            pushed=sorted(pushed),
        )
        return pushed

    # -- health / quarantine -----------------------------------------------

    def _quarantine(self, index: int) -> None:
        self.quarantines += 1
        self._tag(index, "quarantines")
        streak = min(self._quarantine_streak[index] + 1, 8)
        self._quarantine_streak[index] = streak
        window = min(
            self.quarantine_cap,
            self.quarantine_seconds * (2 ** (streak - 1)),
        )
        self._quarantined_until[index] = time.monotonic() + window
        self.flight.record(
            "quarantine-open",
            worker=self._keys[index],
            streak=streak,
            window=window,
        )
        session = self._sessions[index]
        self._sessions[index] = None
        if session is not None:
            session.close()

    def _record_success(self, index: int) -> None:
        if self._quarantine_streak[index]:
            self.probe_recoveries += 1
            self.flight.record(
                "quarantine-close", worker=self._keys[index]
            )
        self._quarantine_streak[index] = 0
        self._quarantined_until[index] = 0.0

    def _record_failure(self, index: int, exc: Exception) -> None:
        """Classify one failed attempt and update worker health."""
        text = str(exc)
        if "OwnershipError" in text:
            # The worker is fine; *we* routed a shard it does not
            # own.  Retry elsewhere, never quarantine.
            self.ownership_misses += 1
            self._tag(index, "ownership_misses")
            self.flight.record(
                "ownership-miss", worker=self._keys[index]
            )
            return
        if isinstance(exc, (TimeoutError, _FutureTimeout)):
            self.timeouts += 1
            self._tag(index, "timeouts")
        elif "server error (" in text:
            # The worker answered -- with an error.  It is alive;
            # replicas may still succeed (their state can differ), and
            # if the error is deterministic the local degrade surfaces
            # it.  Don't poison the worker for unrelated shards.
            self.worker_errors += 1
            self._tag(index, "worker_errors")
            return
        if self._quarantine_streak[index]:
            self.probe_failures += 1
        self._quarantine(index)

    def _eligible(self, index: int) -> bool:
        """May worker ``index`` be attempted right now?  Quarantined
        workers whose window has expired are eligible -- that attempt
        *is* the half-open probe."""
        if self._version_skew[index]:
            return False
        return self._quarantined_until[index] <= time.monotonic()

    def _usable_session(
        self,
        index: int,
        db_version: int,
        shard: Optional[int] = None,
    ) -> Optional[RemoteSession]:
        """A connected, version-matched, shard-owning session for
        worker ``index``, or ``None`` (health state updated)."""
        if not self._eligible(index):
            return None
        probing = self._quarantine_streak[index] > 0
        session = self._sessions[index]
        if session is None or session.closed:
            if probing:
                self.probes += 1
            try:
                session = RemoteSession(
                    self.addresses[index],
                    timeout=self.timeout,
                    connect_timeout=self.connect_timeout,
                )
            except NetError:
                self.connect_failures += 1
                self._tag(index, "connect_failures")
                if probing:
                    self.probe_failures += 1
                self._quarantine(index)
                return None
            self._sessions[index] = session
        if session.server_info.get("db_version") != db_version:
            # Alive but serving another snapshot: skip it for this
            # batch, re-probe on the next (satellite of the same fix
            # in RemoteExecutor).
            self.version_mismatches += 1
            self._version_skew[index] = True
            self._sessions[index] = None
            session.close()
            return None
        owned = session.server_info.get("owned_shards")
        if (
            shard is not None
            and isinstance(owned, list)
            and shard not in owned
        ):
            # Known non-owner: routing around it costs nothing here,
            # versus a wasted round trip ending in OwnershipError.
            self.ownership_misses += 1
            self._tag(index, "ownership_misses")
            return None
        return session

    def _backoff_sleep(self, attempt: int) -> None:
        """Jittered exponential backoff before retry ``attempt``
        (attempt 0 is the first try -- no wait)."""
        if attempt <= 0:
            return
        base = min(
            self.backoff_cap, self.backoff_base * (2 ** (attempt - 1))
        )
        delay = base * (1.0 - self.backoff_jitter * self._rng.random())
        if delay > 0:
            time.sleep(delay)

    # -- execution ---------------------------------------------------------

    def execute(self, session, queries: Sequence[Query], engine: str):
        self._ensure_registered(session)
        # Version-skew marks are per-batch: a worker that reloaded
        # since the last batch deserves a fresh hello.
        self._version_skew = [False] * len(self.addresses)
        database = session.database
        count = getattr(database, "shard_count", 1)
        if count and count > 0:
            self._map_for(count)
        self._batch_version = database.version
        return super().execute(session, queries, engine)

    def _submit_shard(
        self, query: Query, tree, index: int, fanout: str, version: int
    ):
        """Pipelined first attempt: submit to the first usable replica
        so every worker is busy before any result is awaited.  The
        task dict carries the chain so gathering can fail over."""
        chain = self._replica_chain(index)
        task = {
            "chain": chain,
            "pos": len(chain),
            "worker": None,
            "future": None,
            "attempted": 0,
        }
        for pos, worker_index in enumerate(chain):
            if not self._eligible(worker_index):
                continue
            if task["attempted"]:
                self.retries += 1
                self._tag(worker_index, "retries")
            task["attempted"] += 1
            remote = self._usable_session(
                worker_index, version, shard=index
            )
            if remote is None:
                continue
            try:
                future = remote.submit_shard(query, tree, index, fanout)
            except NetError as exc:
                self._record_failure(worker_index, exc)
                continue
            self.remote_tasks += 1
            task.update(pos=pos, worker=worker_index, future=future)
            break
        return task

    def _submit_full(self, query: Query, tree, version: int):
        chain = self._full_chain()
        task = {
            "chain": chain,
            "pos": len(chain),
            "worker": None,
            "future": None,
            "attempted": 0,
        }
        for pos, worker_index in enumerate(chain):
            if not self._eligible(worker_index):
                continue
            if task["attempted"]:
                self.retries += 1
                self._tag(worker_index, "retries")
            task["attempted"] += 1
            remote = self._usable_session(worker_index, version)
            if remote is None:
                continue
            try:
                future = remote.submit_execute(query, tree)
            except NetError as exc:
                self._record_failure(worker_index, exc)
                continue
            self.remote_tasks += 1
            task.update(pos=pos, worker=worker_index, future=future)
            break
        return task

    def _await_first(self, task):
        """Resolve the pipelined first attempt of a task, or None."""
        future = task["future"]
        if future is None:
            return None
        worker_index = task["worker"]
        try:
            seconds, fr, spans = future.result(self.attempt_timeout)
        except (NetError, TimeoutError, _FutureTimeout, OSError) as exc:
            self._record_failure(worker_index, exc)
            return None
        self._record_success(worker_index)
        return seconds, fr, worker_index, spans

    def _retry_chain(self, task, version, shard, submit_fn):
        """Walk the remaining replicas with backoff; each retry runs
        under a ``remote[i]:retry`` span so a trace shows exactly
        where the failover went."""
        attempted = task["attempted"]
        for pos in range(task["pos"] + 1, len(task["chain"])):
            worker_index = task["chain"][pos]
            if not self._eligible(worker_index):
                continue
            self.retries += 1
            self._tag(worker_index, "retries")
            self._backoff_sleep(attempted)
            attempted += 1
            with obs_trace.span(
                f"remote[{worker_index}]:retry",
                shard=shard,
                attempt=attempted,
            ):
                outcome = self._attempt_sync(
                    worker_index, version, shard, submit_fn
                )
            if outcome is not None:
                return outcome
        return None

    def _attempt_sync(self, worker_index, version, shard, submit_fn):
        """One synchronous attempt against one worker."""
        remote = self._usable_session(worker_index, version, shard)
        if remote is None:
            return None
        try:
            future = submit_fn(remote)
        except NetError as exc:
            self._record_failure(worker_index, exc)
            return None
        self.remote_tasks += 1
        try:
            seconds, fr, spans = future.result(self.attempt_timeout)
        except (NetError, TimeoutError, _FutureTimeout, OSError) as exc:
            self._record_failure(worker_index, exc)
            return None
        self._record_success(worker_index)
        return seconds, fr, worker_index, spans

    def _gather_shard(
        self, session, query: Query, tree, index: int, fanout: str, task
    ):
        version = session.database.version
        outcome = self._await_first(task)
        if outcome is None:
            outcome = self._retry_chain(
                task,
                version,
                index,
                lambda remote: remote.submit_shard(
                    query, tree, index, fanout
                ),
            )
        if outcome is not None:
            seconds, part, worker_index, spans = outcome
            self._absorb_spans(worker_index, spans)
            return seconds, part
        # Every replica of this shard is down: evaluate locally, and
        # say so -- an explicit span plus counter, because a silently
        # degraded cluster is one coordinator doing all the work.
        chain_keys = [self._keys[i] for i in task["chain"]]
        self.flight.record(
            "retry-exhausted", shard=index, chain=chain_keys
        )
        self.degrade_to_local += 1
        self.local_fallbacks += 1
        for key in chain_keys:
            self._tag(key, "degrade_to_local")
        self.flight.record(
            "degrade-to-local", shard=index, chain=chain_keys
        )
        with obs_trace.span("degrade-to-local", shard=index):
            return worker_mod.timed_call(
                worker_mod.evaluate_shard,
                session.database,
                session.check_invariants,
                query,
                tree,
                index,
                fanout,
                session.encoding,
            )

    def _gather_full(self, session, query: Query, tree, task):
        version = session.database.version
        outcome = self._await_first(task)
        if outcome is None:
            outcome = self._retry_chain(
                task,
                version,
                None,
                lambda remote: remote.submit_execute(query, tree),
            )
        if outcome is not None:
            seconds, fr, worker_index, spans = outcome
            self._absorb_spans(worker_index, spans)
            return seconds, fr
        chain_keys = [self._keys[i] for i in task["chain"]]
        self.flight.record("retry-exhausted", chain=chain_keys)
        self.degrade_to_local += 1
        self.local_fallbacks += 1
        for key in chain_keys:
            self._tag(key, "degrade_to_local")
        self.flight.record("degrade-to-local", chain=chain_keys)
        with obs_trace.span("degrade-to-local"):
            return worker_mod.timed_call(
                worker_mod.evaluate_full,
                session.database,
                session.check_invariants,
                query,
                tree,
                session.encoding,
            )
