"""The network tier: query serving over TCP.

Turns the library into a service, the fourth layer of the stack
(storage -> execution -> serving -> **network**):

- :mod:`repro.net.protocol` -- the length-prefixed wire protocol;
  FDBP-framed payloads mean results travel *factorised*;
- :mod:`repro.net.server` -- the asyncio TCP server behind
  ``repro serve`` (pipelining, admission backpressure, wave-coalesced
  evaluation, graceful drain, ``STATS``);
- :mod:`repro.net.client` -- the synchronous
  :class:`~repro.net.client.RemoteSession`, mirroring
  :class:`~repro.service.session.QuerySession`;
- :mod:`repro.net.remote` -- :class:`~repro.net.remote.RemoteExecutor`,
  fanning per-(query, shard) evaluation out over multiple hosts and
  degrading to local execution when a worker is lost;
- :mod:`repro.net.cluster` -- the robustness tier on top:
  :class:`~repro.net.cluster.ClusterMap` (consistent-hash replicated
  shard ownership) and :class:`~repro.net.cluster.ReplicatedExecutor`
  (retry on the next replica with timeouts and jittered backoff,
  quarantine with half-open probes, loud local degrade only when all
  replicas of a shard are down).
"""

from repro.net.client import NetError, RemoteSession, parse_address
from repro.net.cluster import ClusterMap, ReplicatedExecutor
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.net.remote import RemoteExecutor
from repro.net.server import (
    DEFAULT_HOST,
    OwnershipError,
    QueryServer,
    ServerThread,
)

__all__ = [
    "ClusterMap",
    "DEFAULT_HOST",
    "DEFAULT_MAX_FRAME",
    "DEFAULT_PORT",
    "NetError",
    "OwnershipError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryServer",
    "RemoteExecutor",
    "RemoteSession",
    "ReplicatedExecutor",
    "ServerThread",
    "parse_address",
]
