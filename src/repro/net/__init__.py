"""The network tier: query serving over TCP.

Turns the library into a service, the fourth layer of the stack
(storage -> execution -> serving -> **network**):

- :mod:`repro.net.protocol` -- the length-prefixed wire protocol;
  FDBP-framed payloads mean results travel *factorised*;
- :mod:`repro.net.server` -- the asyncio TCP server behind
  ``repro serve`` (pipelining, admission backpressure, wave-coalesced
  evaluation, graceful drain, ``STATS``);
- :mod:`repro.net.client` -- the synchronous
  :class:`~repro.net.client.RemoteSession`, mirroring
  :class:`~repro.service.session.QuerySession`;
- :mod:`repro.net.remote` -- :class:`~repro.net.remote.RemoteExecutor`,
  fanning per-(query, shard) evaluation out over multiple hosts and
  degrading to local execution when a worker is lost.
"""

from repro.net.client import NetError, RemoteSession, parse_address
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.net.remote import RemoteExecutor
from repro.net.server import DEFAULT_HOST, QueryServer, ServerThread

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_MAX_FRAME",
    "DEFAULT_PORT",
    "NetError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryServer",
    "RemoteExecutor",
    "RemoteSession",
    "ServerThread",
    "parse_address",
]
