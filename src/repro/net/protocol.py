"""The length-prefixed wire protocol of the network tier.

Every message travelling either direction is one *frame*::

    +-------------+--------------------------------------------------+
    | u32 length  | body                                             |
    +-------------+--------------------------------------------------+

    body := magic "FN" | u8 protocol version | u8 kind-length | kind
            | u32 header-length | header (JSON) | payload (rest)

The four-byte length prefix makes framing trivial and *bounded*: a
reader knows, before buffering anything, whether the peer is about to
exceed :data:`DEFAULT_MAX_FRAME` and can reject the frame without
reading it (oversized frames are a denial-of-service vector, not a
protocol feature).  The two magic bytes and the version byte reject
foreign or future peers before any JSON is parsed.

``kind`` names the message (:data:`REQUEST_KINDS` /
:data:`RESPONSE_KINDS`); the JSON *header* carries the small,
schema-level facts (request ids, SQL text, engine names, counters);
the *payload* carries bulk data in the FDBP binary format of
:mod:`repro.persist.codec`.  That reuse is the point of the protocol:
a factorised query result is serialised by the same codec that
persists it, so results travel *factorised* -- an arena-encoded result
ships its interned pool plus near-verbatim column bytes, and the
client's deserialisation cost is ~O(bytes) (the PR-4 ~27x codec-load
property becomes a wire property).

Result framing
--------------
:func:`pack_result` turns a
:class:`~repro.service.session.SessionResult` into ``(meta, payload)``
where ``meta["payload"]`` says how to read the bytes back:

- ``"fdbp"``  -- one self-describing FDBP blob (``factorised``,
  ``arena`` or ``relation`` kind; the blob's own header dispatches);
- ``"fdbp-pool"`` -- an arena result against the connection's shared
  value pool (:class:`~repro.persist.codec.ArenaPoolEncoder`): the
  pool ships once per connection as incremental deltas, columns
  reference it by id, and every decoded arena on the connection
  shares the receiver pool -- so streamed shard parts recombine in
  ``ops.union`` without re-interning.  Clients opt in per request
  with ``"pool": true``; either side falling back to ``"fdbp"`` is
  always legal;
- ``"rows"``  -- tagged value rows (the SQLite comparator's raw
  tuples, which have no factorised form);
- ``"none"``  -- no payload (errors, pure-counter responses).

:func:`unpack_result` is the exact inverse and rebuilds a
``SessionResult``, so remote callers receive the same object local
callers do.
"""

from __future__ import annotations

import io
import json
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.core.factorised import FactorisedRelation
from repro.persist import codec
from repro.persist.codec import (
    ArenaPoolDecoder,
    ArenaPoolEncoder,
    PersistError,
    _read_varint,
    _write_varint,
    read_value,
    write_value,
)
from repro.query.query import Query
from repro.relational.relation import Relation
from repro.service.session import SessionResult

MAGIC = b"FN"
PROTOCOL_VERSION = 1

#: Default upper bound on one frame (header + payload), either way.
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 7432

#: Messages a client may send.
REQUEST_KINDS = (
    "query",
    "batch",
    "shard",
    "execute",
    "stats",
    "metrics",
    "mutate",
    "own",
    "disown",
)

#: Messages a server may send.
RESPONSE_KINDS = (
    "hello",
    "result",
    "batch-result",
    "stats-result",
    "metrics-result",
    "mutate-result",
    "own-result",
    "disown-result",
    "error",
)

_KINDS = frozenset(REQUEST_KINDS) | frozenset(RESPONSE_KINDS)


class ProtocolError(ValueError):
    """Raised for malformed, foreign, truncated or oversized frames."""


# -- framing -----------------------------------------------------------------


def encode_frame(
    kind: str, header: Dict[str, Any], payload: bytes = b""
) -> bytes:
    """One complete frame, length prefix included."""
    if kind not in _KINDS:
        raise ProtocolError(f"unknown message kind {kind!r}")
    kind_bytes = kind.encode("ascii")
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    body = b"".join(
        (
            MAGIC,
            struct.pack(">B", PROTOCOL_VERSION),
            struct.pack(">B", len(kind_bytes)),
            kind_bytes,
            struct.pack(">I", len(header_bytes)),
            header_bytes,
            payload,
        )
    )
    return struct.pack(">I", len(body)) + body


def decode_body(body: bytes) -> Tuple[str, Dict[str, Any], bytes]:
    """Parse one frame body into (kind, header, payload)."""
    if len(body) < 4:
        raise ProtocolError("truncated frame: short preamble")
    if body[:2] != MAGIC:
        raise ProtocolError(
            f"not a repro.net frame (magic {body[:2]!r}, "
            f"expected {MAGIC!r})"
        )
    if body[2] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {body[2]} "
            f"(this build speaks version {PROTOCOL_VERSION})"
        )
    kind_len = body[3]
    offset = 4 + kind_len
    if len(body) < offset + 4:
        raise ProtocolError("truncated frame: short kind")
    try:
        kind = body[4:offset].decode("ascii")
    except UnicodeDecodeError as exc:
        raise ProtocolError("malformed message kind") from exc
    if kind not in _KINDS:
        raise ProtocolError(f"unknown message kind {kind!r}")
    (header_len,) = struct.unpack_from(">I", body, offset)
    offset += 4
    if len(body) < offset + header_len:
        raise ProtocolError("truncated frame: short header")
    try:
        header = json.loads(body[offset : offset + header_len])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("malformed frame header") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    return kind, header, bytes(body[offset + header_len :])


# -- blocking-socket transport (the synchronous client) ----------------------


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes; :class:`ProtocolError` on early EOF."""
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[Tuple[str, Dict[str, Any], bytes]]:
    """Read one frame; ``None`` on a clean EOF between frames."""
    try:
        head = sock.recv(4)
    except (ConnectionResetError, BrokenPipeError):
        return None
    if not head:
        return None
    if len(head) < 4:
        head += recv_exact(sock, 4 - len(head))
    (length,) = struct.unpack(">I", head)
    if length > max_frame:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the "
            f"{max_frame}-byte limit"
        )
    return decode_body(recv_exact(sock, length))


def send_frame(
    sock: socket.socket,
    kind: str,
    header: Dict[str, Any],
    payload: bytes = b"",
) -> None:
    sock.sendall(encode_frame(kind, header, payload))


# -- result packing ----------------------------------------------------------


def _encode_rows(rows: List[tuple], arity: int) -> bytes:
    out = io.BytesIO()
    _write_varint(out, len(rows))
    for row in rows:
        if len(row) != arity:
            raise ProtocolError(
                f"row of arity {len(row)} in a {arity}-column result"
            )
        for value in row:
            write_value(out, value)
    return out.getvalue()


def _decode_rows(payload: bytes, arity: int) -> List[tuple]:
    src = io.BytesIO(payload)
    try:
        count = _read_varint(src)
        rows = [
            tuple(read_value(src) for _ in range(arity))
            for _ in range(count)
        ]
    except PersistError as exc:
        raise ProtocolError(f"malformed rows payload: {exc}") from exc
    if src.read(1):
        raise ProtocolError("rows payload has trailing bytes")
    return rows


def pack_rows(
    rows: List[tuple],
) -> Tuple[int, bytes]:
    """(arity, payload) for a list of raw rows (mutate requests).

    Rows travel as the codec's tagged values -- the same value space
    relations store -- not as JSON, so mutations round-trip exactly
    what a local ``extend_rows``/``delete_rows`` would see.
    """
    rows = [tuple(row) for row in rows]
    arity = len(rows[0]) if rows else 0
    return arity, _encode_rows(rows, arity)


def unpack_rows(payload: bytes, arity: int) -> List[tuple]:
    """Inverse of :func:`pack_rows`."""
    return _decode_rows(payload, int(arity))


def pack_blob(obj: object) -> bytes:
    """One in-memory FDBP blob (the codec's on-disk framing, verbatim)."""
    kind, header, payload = codec.encode(obj)
    out = io.BytesIO()
    codec.write_blob(out, kind, header, payload)
    return out.getvalue()


def unpack_blob(data: bytes) -> object:
    """Inverse of :func:`pack_blob` (checksummed, self-describing)."""
    try:
        return codec.decode(*codec.read_blob(io.BytesIO(data)))
    except PersistError as exc:
        raise ProtocolError(f"malformed FDBP payload: {exc}") from exc


def unpack_pooled(
    payload: bytes, pool: Optional[ArenaPoolDecoder]
) -> FactorisedRelation:
    """Decode one ``fdbp-pool`` payload against the connection pool."""
    if pool is None:
        raise ProtocolError(
            "received a pooled arena payload on a connection that "
            "did not request wire pooling"
        )
    try:
        return pool.decode(payload)
    except PersistError as exc:
        raise ProtocolError(f"malformed pooled payload: {exc}") from exc


def pack_result(
    result: SessionResult,
    pool: Optional[ArenaPoolEncoder] = None,
    include_spans: bool = True,
) -> Tuple[Dict[str, Any], bytes]:
    """(meta, payload) for one evaluated query (see module docstring).

    With ``pool``, arena-encoded factorised results go out in the
    pooled form; the caller owns the encoder's commit/rollback (the
    watermark may only advance once the frame actually went out).
    """
    meta: Dict[str, Any] = {
        "engine": result.engine,
        "cached": result.cached,
        "deduped": result.deduped,
        "elapsed": result.elapsed,
    }
    # Observability rides in the meta: span records are plain JSON
    # dicts, so a remote caller sees the same breakdown a local one
    # does (client-side code prefixes them "server:" on merge).  The
    # server only sets ``include_spans`` for requests that carried a
    # trace context -- untraced traffic must not grow by hundreds of
    # bytes of span records per result.
    if result.trace_id is not None:
        meta["trace"] = result.trace_id
    if include_spans and result.spans:
        meta["spans"] = result.spans
    if result.factorised is not None:
        if pool is not None and result.factorised.encoding == "arena":
            meta["payload"] = "fdbp-pool"
            return meta, pool.encode(result.factorised)
        meta["payload"] = "fdbp"
        return meta, pack_blob(result.factorised)
    if result.flat is not None:
        meta["payload"] = "fdbp"
        return meta, pack_blob(result.flat)
    meta["payload"] = "rows"
    attributes = list(result.raw_attributes or ())
    meta["attributes"] = attributes
    return meta, _encode_rows(result.raw or [], len(attributes))


def unpack_result(
    query: Query,
    meta: Dict[str, Any],
    payload: bytes,
    pool: Optional[ArenaPoolDecoder] = None,
) -> SessionResult:
    """Rebuild the :class:`SessionResult` a server packed."""
    try:
        engine = meta["engine"]
        cached = bool(meta["cached"])
        deduped = bool(meta.get("deduped", False))
        elapsed = float(meta.get("elapsed", 0.0))
        payload_kind = meta["payload"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed result meta: {meta!r}") from exc
    spans = meta.get("spans")
    obs = {
        "spans": list(spans) if spans else None,
        "trace_id": meta.get("trace"),
    }
    if payload_kind == "fdbp-pool":
        return SessionResult(
            query=query,
            engine=engine,
            cached=cached,
            deduped=deduped,
            elapsed=elapsed,
            factorised=unpack_pooled(payload, pool),
            **obs,
        )
    if payload_kind == "fdbp":
        obj = unpack_blob(payload)
        if isinstance(obj, FactorisedRelation):
            return SessionResult(
                query=query,
                engine=engine,
                cached=cached,
                deduped=deduped,
                elapsed=elapsed,
                factorised=obj,
                **obs,
            )
        if isinstance(obj, Relation):
            return SessionResult(
                query=query,
                engine=engine,
                cached=cached,
                deduped=deduped,
                elapsed=elapsed,
                flat=obj,
                **obs,
            )
        raise ProtocolError(
            f"result blob holds a {type(obj).__name__}, not a "
            f"relation or factorisation"
        )
    if payload_kind == "rows":
        attributes = tuple(meta.get("attributes") or ())
        return SessionResult(
            query=query,
            engine=engine,
            cached=cached,
            deduped=deduped,
            elapsed=elapsed,
            raw=_decode_rows(payload, len(attributes)),
            raw_attributes=attributes,
            **obs,
        )
    raise ProtocolError(f"unknown result payload kind {payload_kind!r}")


def pack_results(
    results: List[SessionResult],
    pool: Optional[ArenaPoolEncoder] = None,
    include_spans: bool = True,
) -> Tuple[List[Dict[str, Any]], bytes]:
    """Frame a whole batch: per-result metas (with byte extents) plus
    the concatenated payloads.  Pooled payloads within one batch chain
    their deltas in order; the decoder replays them the same way."""
    metas: List[Dict[str, Any]] = []
    parts: List[bytes] = []
    for result in results:
        meta, payload = pack_result(result, pool, include_spans)
        meta["nbytes"] = len(payload)
        metas.append(meta)
        parts.append(payload)
    return metas, b"".join(parts)


def unpack_results(
    queries: List[Query],
    metas: List[Dict[str, Any]],
    payload: bytes,
    pool: Optional[ArenaPoolDecoder] = None,
) -> List[SessionResult]:
    if len(queries) != len(metas):
        raise ProtocolError(
            f"batch of {len(queries)} queries answered with "
            f"{len(metas)} results"
        )
    out: List[SessionResult] = []
    offset = 0
    for query, meta in zip(queries, metas):
        try:
            nbytes = int(meta["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed batch meta: {meta!r}"
            ) from exc
        if nbytes < 0 or offset + nbytes > len(payload):
            raise ProtocolError("batch payload extents out of range")
        out.append(
            unpack_result(
                query, meta, payload[offset : offset + nbytes], pool
            )
        )
        offset += nbytes
    if offset != len(payload):
        raise ProtocolError("batch payload has trailing bytes")
    return out
