"""The asyncio query server: one ``QuerySession`` behind a TCP port.

Design
------
The server owns exactly one
:class:`~repro.service.session.QuerySession` and never evaluates a
query on the event loop:

- ``query`` and ``batch`` requests go through the session's
  :meth:`~repro.service.session.QuerySession.submit` (the overlapping
  batch submitter): requests arriving from *different* connections
  while a wave is running are coalesced into the next wave --
  deduplicated, compiled once, fanned out together -- which is where
  the serving tier's aggregate-throughput win comes from.  The
  returned :class:`concurrent.futures.Future` is awaited via
  ``asyncio.wrap_future``, so the loop stays free;
- ``shard`` and ``execute`` requests (the
  :class:`~repro.net.remote.RemoteExecutor` worker protocol) run the
  stateless :mod:`repro.exec.worker` entry points on a small thread
  pool -- they touch only the immutable database snapshot, never the
  session's caches.

Per-connection **pipelining** falls out of the request ids: the reader
coroutine admits each frame into the bounded admission queue and
immediately reads the next one, responses are written (under a
per-connection lock) whenever their evaluation finishes, and clients
match them back by id -- possibly out of order.

**Backpressure** is the admission semaphore: when ``max_pending``
requests are in flight the reader coroutines stop reading, the kernel
socket buffers fill, and remote senders block in ``send`` -- the
standard TCP story, with no unbounded queue anywhere.

**Graceful drain** (:meth:`QueryServer.drain`): stop accepting
connections, answer new requests with a ``draining`` error, wait for
every admitted request to finish, then close the connections and the
session.  ``repro serve`` wires SIGINT/SIGTERM to it.
"""

from __future__ import annotations

import asyncio
import contextlib
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Sequence, Set, Tuple

from repro.core.ftree import FTree
from repro.exec import worker as worker_mod
from repro.net import protocol
from repro.net.protocol import DEFAULT_MAX_FRAME, ProtocolError
from repro.obs import trace as obs_trace
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.query.parser import parse_query
from repro.storage.sharded import ShardedDatabase

DEFAULT_HOST = "127.0.0.1"


class OwnershipError(RuntimeError):
    """A ``shard`` request named a shard this worker does not own.

    Deliberately its own type (the error frame carries the type name):
    a routing miss is the coordinator's problem -- it retries the next
    replica -- and must not be confused with a sick worker, which gets
    quarantined.
    """


@dataclass
class ServerStats:
    """Lifetime counters of one server (all monotone except gauges)."""

    connections: int = 0
    active_connections: int = 0
    requests: int = 0
    queries: int = 0
    batches: int = 0
    shard_tasks: int = 0
    execute_tasks: int = 0
    stats_requests: int = 0
    mutations: int = 0
    own_requests: int = 0
    disown_requests: int = 0
    ownership_rejections: int = 0
    errors: int = 0
    protocol_errors: int = 0
    oversized_frames: int = 0
    pending: int = 0
    peak_pending: int = 0
    rejected_draining: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class QueryServer:
    """Serve one :class:`QuerySession` to concurrent TCP clients.

    Parameters
    ----------
    session:
        The session to serve.  The server owns it: :meth:`drain`
        closes it.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` after :meth:`start`).
    max_pending:
        Admission bound: at most this many requests are in flight
        across all connections; further frames wait unread
        (TCP backpressure).
    max_frame:
        Reject frames larger than this many bytes (both a malformed-
        peer guard and a memory bound).
    task_threads:
        Thread-pool size for ``shard``/``execute`` worker tasks.
    metrics_port:
        When set, additionally serve a plain-HTTP Prometheus text
        endpoint (``GET /metrics``) on this port -- the standard
        scrape surface, separate from the binary query port.
    owned_shards:
        When set (a sequence of shard indices), this worker *owns*
        only those shards: ``shard`` requests for any other index are
        refused with an :class:`OwnershipError` so a replicated
        coordinator routes them to a replica that does own them.
        ``None`` (the default) means the worker answers for every
        shard.  Membership changes adjust ownership at runtime via
        ``own``/``disown`` frames.
    """

    def __init__(
        self,
        session,
        host: str = DEFAULT_HOST,
        port: int = 0,
        max_pending: int = 128,
        max_frame: int = DEFAULT_MAX_FRAME,
        task_threads: int = 4,
        metrics_port: Optional[int] = None,
        owned_shards: Optional[Sequence[int]] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        self.session = session
        self.owned: Optional[Set[int]] = None
        if owned_shards is not None:
            self.owned = self._validated_shards(owned_shards)
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.max_frame = max_frame
        self.metrics_port = metrics_port
        self.stats = ServerStats()
        # Share the session's registry so one snapshot covers every
        # tier; register the server's own counters alongside.
        self.registry: MetricsRegistry = getattr(
            session, "registry", None
        ) or MetricsRegistry()
        self.registry.register("server", self._server_counters)
        # Per-shard heat map: query/row/latency tallies keyed by shard
        # index (string keys -- they travel in JSON wire frames).  The
        # federation poller aggregates these across the fleet into the
        # ring-utilisation view.
        self._shard_heat: Dict[str, Dict[str, float]] = {}
        self._heat_lock = threading.Lock()
        self.registry.register("heat", self._heat_counters)
        # Flight recorder: ownership misses and rebalances are the
        # worker-side narrative a post-mortem needs.
        self.flight = FlightRecorder()
        self.registry.register("flight", self.flight.counters)
        self._request_seconds = self.registry.histogram(
            "request_seconds"
        )
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._sem: Optional[asyncio.Semaphore] = None
        self._pool = ThreadPoolExecutor(
            max_workers=task_threads, thread_name_prefix="repro-net-task"
        )
        self._tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._draining = False
        self._idle: Optional[asyncio.Event] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._sem = asyncio.Semaphore(self.max_pending)
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics, self.host, self.metrics_port
            )
        self.started_at = time.time()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) -- resolves ``port=0`` requests."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def metrics_address(self) -> Optional[Tuple[str, int]]:
        """The bound (host, port) of the Prometheus endpoint, if any."""
        if self._metrics_server is None or not self._metrics_server.sockets:
            return None
        return self._metrics_server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown: finish admitted work, then close.

        New connections are refused (listener closed), new requests on
        live connections answered with a ``draining`` error, admitted
        requests run to completion and deliver their responses; then
        every connection, the task pool and the session are closed.
        Idempotent.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            with contextlib.suppress(Exception):
                await self._metrics_server.wait_closed()
        if self._idle is not None:
            await self._idle.wait()
        for writer in list(self._writers):
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._writers.clear()
        self._pool.shutdown(wait=True)
        self.session.close()

    # -- shard ownership ---------------------------------------------------

    def _validated_shards(self, shards: Sequence[int]) -> Set[int]:
        """``shards`` as a set of in-range indices, or raise."""
        database = self.session.database
        if not isinstance(database, ShardedDatabase):
            raise ProtocolError(
                "this server holds an unsharded database; shard "
                "ownership does not apply"
            )
        indices: Set[int] = set()
        for shard in shards:
            index = int(shard)
            if not 0 <= index < database.shard_count:
                raise ProtocolError(
                    f"shard {index} out of range "
                    f"0..{database.shard_count - 1}"
                )
            indices.add(index)
        return indices

    def owned_shards(self) -> Optional[Tuple[int, ...]]:
        """The sorted owned shard indices, or ``None`` = all shards."""
        return None if self.owned is None else tuple(sorted(self.owned))

    # -- connection handling -----------------------------------------------

    def _hello_header(self) -> Dict[str, Any]:
        database = self.session.database
        sharded = isinstance(database, ShardedDatabase)
        owned = self.owned_shards()
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "server": "repro.net",
            "encoding": self.session.encoding,
            "max_frame": self.max_frame,
            "sharded": sharded,
            "shard_count": database.shard_count if sharded else 1,
            "strategy": database.strategy if sharded else None,
            "relations": sorted(database.names),
            "db_version": database.version,
            # None = this worker answers for every shard; a list = it
            # owns only those (the replicated coordinator routes
            # around the rest without a wasted round trip).
            "owned_shards": None if owned is None else list(owned),
            # Arena results can travel against a per-connection shared
            # value pool ("pool": true on the request) -- see
            # repro.persist.codec.ArenaPoolEncoder.
            "wire_pool": True,
        }

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        self.stats.active_connections += 1
        self._writers.add(writer)
        lock = asyncio.Lock()
        # One shared wire pool per connection: requests flagged
        # "pool": true get arena results as incremental deltas against
        # it (encode+send run under the connection lock, so deltas hit
        # the wire in the order they were cut).
        pool_enc = protocol.ArenaPoolEncoder()
        try:
            await self._send(writer, lock, "hello", self._hello_header())
            while True:
                try:
                    head = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # EOF (clean or mid-preamble): just go away
                (length,) = struct.unpack(">I", head)
                if length > self.max_frame:
                    # Refuse to buffer it; the stream is beyond repair
                    # (we will not skip `length` bytes of hostility).
                    self.stats.oversized_frames += 1
                    await self._send_error(
                        writer,
                        lock,
                        None,
                        f"frame of {length} bytes exceeds the "
                        f"{self.max_frame}-byte limit",
                        kind="ProtocolError",
                    )
                    break
                try:
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # truncated mid-frame: peer died, clean up
                try:
                    kind, header, payload = protocol.decode_body(body)
                except ProtocolError as exc:
                    # Framing held but the body is foreign/garbled; we
                    # cannot trust anything that follows either.
                    self.stats.protocol_errors += 1
                    await self._send_error(
                        writer, lock, None, str(exc), kind="ProtocolError"
                    )
                    break
                self.stats.requests += 1
                rid = header.get("id")
                if self._draining:
                    self.stats.rejected_draining += 1
                    await self._send_error(
                        writer, lock, rid, "server is draining"
                    )
                    continue
                # Admission: holding the reader here until a slot
                # frees is the backpressure mechanism.
                await self._sem.acquire()
                if self._draining:
                    # drain() may have started while we were parked on
                    # the semaphore; admitting now would process work
                    # after the server reported itself drained.
                    self._sem.release()
                    self.stats.rejected_draining += 1
                    await self._send_error(
                        writer, lock, rid, "server is draining"
                    )
                    continue
                self._admitted()
                try:
                    task = asyncio.ensure_future(
                        self._process(
                            kind, header, payload, writer, lock, pool_enc
                        )
                    )
                    self._tasks.add(task)
                    task.add_done_callback(self._task_done)
                except BaseException:
                    # Failing to even schedule the task must not leak
                    # the pending gauge or the admission slot: the
                    # drain barrier and backpressure both hang off
                    # them (tests assert the gauges return to zero).
                    self._retire()
                    raise
        finally:
            self.stats.active_connections -= 1
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _admitted(self) -> None:
        self.stats.pending += 1
        self.stats.peak_pending = max(
            self.stats.peak_pending, self.stats.pending
        )
        self._idle.clear()

    def _retire(self) -> None:
        """Undo one :meth:`_admitted`: every admission retires exactly
        once, on *every* path (completion, cancellation, scheduling
        failure), or the pending gauge drifts and drain deadlocks."""
        self.stats.pending -= 1
        if self.stats.pending == 0:
            self._idle.set()
        self._sem.release()

    def _task_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        self._retire()
        with contextlib.suppress(asyncio.CancelledError):
            exc = task.exception()
            if exc is not None:  # _process never raises by design
                self.stats.errors += 1

    # -- request processing ------------------------------------------------

    async def _process(
        self,
        kind: str,
        header: Dict[str, Any],
        payload: bytes,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        pool_enc: "protocol.ArenaPoolEncoder",
    ) -> None:
        rid = header.get("id")
        start = time.perf_counter()
        try:
            if kind == "query":
                await self._process_query(header, writer, lock, pool_enc)
            elif kind == "batch":
                await self._process_batch(header, writer, lock, pool_enc)
            elif kind == "shard":
                await self._process_worker_task(
                    kind, header, payload, writer, lock, pool_enc
                )
            elif kind == "execute":
                await self._process_worker_task(
                    kind, header, payload, writer, lock, pool_enc
                )
            elif kind == "mutate":
                await self._process_mutate(header, payload, writer, lock)
            elif kind in ("own", "disown"):
                await self._process_ownership(kind, header, writer, lock)
            elif kind == "stats":
                self.stats.stats_requests += 1
                await self._send(
                    writer, lock, "stats-result", self.describe_stats(rid)
                )
            elif kind == "metrics":
                self.stats.stats_requests += 1
                await self._send(
                    writer,
                    lock,
                    "metrics-result",
                    {"id": rid, **self.registry.snapshot()},
                    self.registry.prometheus_text().encode("utf-8"),
                )
            else:
                raise ProtocolError(
                    f"server cannot handle {kind!r} messages"
                )
        except Exception as exc:
            self.stats.errors += 1
            await self._send_error(
                writer, lock, rid, str(exc), kind=type(exc).__name__
            )
        finally:
            self._request_seconds.observe(time.perf_counter() - start)

    async def _process_query(
        self,
        header: Dict[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        pool_enc: "protocol.ArenaPoolEncoder",
    ) -> None:
        self.stats.queries += 1
        trace = self._seed_trace(header)
        with obs_trace.activate(trace):
            with obs_trace.span("parse"):
                query = parse_query(str(header["sql"]))
        engine = str(header.get("engine") or "auto")
        future = self.session.submit(query, engine, trace=trace)
        result = await asyncio.wrap_future(future)
        pool = pool_enc if header.get("pool") else None
        spans = bool(header.get("trace") or header.get("spans"))

        def pack():
            meta, payload = protocol.pack_result(result, pool, spans)
            meta["id"] = header.get("id")
            return "result", meta, payload

        await self._send_packed(writer, lock, pool, pack)

    async def _process_batch(
        self,
        header: Dict[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        pool_enc: "protocol.ArenaPoolEncoder",
    ) -> None:
        self.stats.batches += 1
        statements = header["sql"]
        if not isinstance(statements, list):
            raise ProtocolError("batch 'sql' must be a list of statements")
        engine = str(header.get("engine") or "auto")
        trace = self._seed_trace(header)
        with obs_trace.activate(trace):
            with obs_trace.span("parse", statements=len(statements)):
                queries = [parse_query(str(stmt)) for stmt in statements]
        # One submit per query (not run_batch): that is what lets the
        # coalescer interleave *other* clients' queries with these.
        # Every statement shares the request's trace: its spans land
        # on each result next to the wave's own.
        futures = [
            self.session.submit(q, engine, trace=trace) for q in queries
        ]
        results = [await asyncio.wrap_future(f) for f in futures]
        pool = pool_enc if header.get("pool") else None
        spans = bool(header.get("trace") or header.get("spans"))

        def pack():
            metas, payload = protocol.pack_results(results, pool, spans)
            return (
                "batch-result",
                {"id": header.get("id"), "results": metas},
                payload,
            )

        await self._send_packed(writer, lock, pool, pack)

    def _seed_trace(
        self, header: Dict[str, Any]
    ) -> Optional[obs_trace.Trace]:
        """A server-side trace seeded from the request header.

        The client's ``trace`` context (``{"id", "client"}``) becomes
        the trace's id and *origin*, so server-side slow-query log
        entries correlate back to the client's request.  ``None`` when
        the session has tracing off.
        """
        if not getattr(self.session, "tracing", False):
            return None
        ctx = header.get("trace")
        if not isinstance(ctx, dict):
            ctx = None
        return obs_trace.Trace(
            trace_id=(ctx or {}).get("id"), origin=ctx
        )

    async def _process_worker_task(
        self,
        kind: str,
        header: Dict[str, Any],
        payload: bytes,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        pool_enc: "protocol.ArenaPoolEncoder",
    ) -> None:
        if kind == "shard":
            self.stats.shard_tasks += 1
        else:
            self.stats.execute_tasks += 1
        loop = asyncio.get_running_loop()
        elapsed, fr, records = await loop.run_in_executor(
            self._pool, self._run_worker_task, kind, header, payload
        )
        meta = {
            "id": header.get("id"),
            "engine": "fdb",
            "cached": False,
            "deduped": False,
            "elapsed": elapsed,
        }
        if records and (header.get("trace") or header.get("spans")):
            # Worker-host spans travel back in the part meta (only for
            # traced requests); the coordinator merges them prefixed
            # ``remote[i]:``.
            meta["spans"] = records
        pool = pool_enc if header.get("pool") else None
        if pool is not None and fr.encoding == "arena":
            # Pooled part results are what lets a RemoteExecutor
            # coordinator union per-shard arenas by id: every part on
            # this connection references the same client-side pool.
            def pack():
                return (
                    "result",
                    {**meta, "payload": "fdbp-pool"},
                    pool.encode(fr),
                )

            await self._send_packed(writer, lock, pool, pack)
            return
        blob = await loop.run_in_executor(
            self._pool, protocol.pack_blob, fr
        )
        await self._send(
            writer, lock, "result", {**meta, "payload": "fdbp"}, blob
        )

    def _run_worker_task(
        self, kind: str, header: Dict[str, Any], payload: bytes
    ) -> Tuple[float, object, list]:
        """Thread-pool body of a ``shard``/``execute`` request."""
        ctx = header.get("trace")
        if not isinstance(ctx, dict):
            ctx = None
        tree = protocol.unpack_blob(payload)
        if not isinstance(tree, FTree):
            raise ProtocolError(
                f"{kind} payload holds a {type(tree).__name__}, "
                f"not an f-tree"
            )
        query = parse_query(str(header["sql"]))
        database = self.session.database
        check = self.session.check_invariants
        encoding = self.session.encoding
        if kind == "shard":
            if not isinstance(database, ShardedDatabase):
                raise ProtocolError(
                    "this server holds an unsharded database; "
                    "'shard' requests need a sharded one"
                )
            index = int(header["shard"])
            if not 0 <= index < database.shard_count:
                raise ProtocolError(
                    f"shard {index} out of range "
                    f"0..{database.shard_count - 1}"
                )
            if self.owned is not None and index not in self.owned:
                self.stats.ownership_rejections += 1
                self.flight.record(
                    "ownership-miss",
                    shard=index,
                    owned=sorted(self.owned),
                )
                raise OwnershipError(
                    f"this worker does not own shard {index} "
                    f"(owned: {sorted(self.owned)})"
                )
            fanout = str(header["fanout"])
            elapsed, fr, records = worker_mod.traced_call(
                ctx,
                worker_mod.evaluate_shard,
                database,
                check,
                query,
                tree,
                index,
                fanout,
                encoding,
            )
            self._record_heat(index, elapsed, fr)
        else:
            elapsed, fr, records = worker_mod.traced_call(
                ctx,
                worker_mod.evaluate_full,
                database,
                check,
                query,
                tree,
                encoding,
            )
        return elapsed, fr, records

    async def _process_mutate(
        self,
        header: Dict[str, Any],
        payload: bytes,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        self.stats.mutations += 1
        loop = asyncio.get_running_loop()
        meta = await loop.run_in_executor(
            self._pool, self._run_mutate, header, payload
        )
        meta["id"] = header.get("id")
        await self._send(writer, lock, "mutate-result", meta)

    def _run_mutate(
        self, header: Dict[str, Any], payload: bytes
    ) -> Dict[str, Any]:
        """Thread-pool body of a ``mutate`` request.

        Mutations go through the live session database, so its version
        bump and recorded delta drive the same refresh path a local
        embedder would see: absorbable appends keep plans and catch
        cached results up, everything else invalidates.
        """
        op = str(header.get("op") or "")
        relation = str(header["relation"])
        rows = protocol.unpack_rows(payload, int(header["arity"]))
        database = self.session.database
        if op == "extend":
            before = len(database[relation])
            merged = database.extend_rows(relation, rows)
            count = len(merged) - before
        elif op == "delete":
            count = database.delete_rows(relation, rows=rows)
        else:
            raise ProtocolError(
                f"unknown mutate op {op!r}; pick 'extend' or 'delete'"
            )
        return {
            "op": op,
            "relation": relation,
            "count": count,
            "db_version": database.version,
        }

    async def _process_ownership(
        self,
        kind: str,
        header: Dict[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """``own``/``disown``: adjust this worker's shard ownership.

        Rebalancing tool of the cluster tier: on a membership change
        the coordinator recomputes the consistent-hash ring and tells
        each surviving worker which shards it gained (``own``) or shed
        (``disown``).  The receipt echoes the full post-change owned
        set, so both sides agree on the contract.
        """
        shards = header.get("shards")
        if not isinstance(shards, list):
            raise ProtocolError(
                f"{kind} 'shards' must be a list of shard indices"
            )
        indices = self._validated_shards(shards)
        database = self.session.database
        everything = set(range(database.shard_count))
        current = everything if self.owned is None else set(self.owned)
        if kind == "own":
            self.stats.own_requests += 1
            current |= indices
        else:
            self.stats.disown_requests += 1
            current -= indices
        self.owned = current
        self.flight.record(
            "rebalance",
            op=kind,
            shards=sorted(indices),
            owned=sorted(current),
        )
        await self._send(
            writer,
            lock,
            f"{kind}-result",
            {
                "id": header.get("id"),
                "owned": sorted(current),
                "shard_count": database.shard_count,
            },
        )

    # -- introspection -----------------------------------------------------

    def _record_heat(self, index: int, elapsed: float, fr) -> None:
        """Tally one shard evaluation into the heat map."""
        try:
            rows = int(fr.count())
        except Exception:
            rows = 0
        with self._heat_lock:
            entry = self._shard_heat.setdefault(
                str(index), {"queries": 0, "rows": 0, "seconds": 0.0}
            )
            entry["queries"] += 1
            entry["rows"] += rows
            entry["seconds"] += float(elapsed)

    def _heat_counters(self) -> Dict[str, Any]:
        """The registry's ``heat`` namespace: per-shard load, keyed by
        shard index."""
        with self._heat_lock:
            return {
                shard: dict(entry)
                for shard, entry in self._shard_heat.items()
            }

    def _server_counters(self) -> Dict[str, Any]:
        """The registry's ``server`` namespace: lifetime counters plus
        configuration and liveness facts."""
        return {
            **self.stats.as_dict(),
            "max_pending": self.max_pending,
            "draining": self._draining,
            "uptime": (
                time.time() - self.started_at
                if self.started_at
                else 0.0
            ),
        }

    def describe_stats(self, rid=None) -> Dict[str, Any]:
        """The ``STATS`` response header: one registry snapshot --
        server, session, cache, queue, store, ivm and adapter counters
        in one document (see :mod:`repro.obs.metrics`)."""
        return {"id": rid, **self.registry.snapshot()}

    async def _handle_metrics(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One-shot Prometheus scrape: minimal HTTP/1.0, text format.

        Deliberately tiny -- no routing, no keep-alive: a scraper
        sends one GET (or HEAD -- health checkers probe that way and
        get the same headers, no body), gets the exposition, and the
        connection closes.  Any other method or path is answered with
        a clean 404, never a hang or a reset.
        """
        try:
            request = await asyncio.wait_for(
                reader.readline(), timeout=10
            )
            # Drain (and ignore) the header block.
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=10
                )
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request.decode("latin-1").split()
            method = parts[0] if parts else ""
            head_only = method == "HEAD"
            if (
                len(parts) >= 2
                and method in ("GET", "HEAD")
                and parts[1].split("?")[0] in ("/metrics", "/")
            ):
                body = self.registry.prometheus_text().encode("utf-8")
                head = (
                    "HTTP/1.0 200 OK\r\n"
                    "Content-Type: text/plain; version=0.0.4; "
                    "charset=utf-8\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode("ascii")
            else:
                body = b"not found\n"
                head = (
                    "HTTP/1.0 404 Not Found\r\n"
                    "Content-Type: text/plain\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode("ascii")
            writer.write(head if head_only else head + body)
            await writer.drain()
        except Exception:
            pass  # a broken scraper must never hurt the server
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- writing -----------------------------------------------------------

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        kind: str,
        header: Dict[str, Any],
        payload: bytes = b"",
    ) -> None:
        await self._send_packed(
            writer, lock, None, lambda: (kind, header, payload)
        )

    async def _send_packed(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        pool,
        pack,
    ) -> None:
        """Pack (via ``pack()``) and write one frame atomically.

        Packing runs *under* the connection lock: pooled arena
        payloads cut a delta against the connection pool, and the
        client replays deltas in arrival order, so cut-and-send must
        not interleave across concurrent responses.  The encoder's
        watermark only commits once the frame really goes out; a
        dropped frame (oversize, dead peer) rolls back and the next
        payload re-ships the delta.
        """
        async with lock:
            try:
                kind, header, payload = pack()
                frame = protocol.encode_frame(kind, header, payload)
            except Exception:
                if pool is not None:
                    pool.rollback()
                raise  # _process turns this into an error response
            if len(frame) - 4 > self.max_frame and kind != "error":
                # Never emit a frame the peer is entitled to reject
                # (it would tear down the connection and every
                # in-flight request with it); a too-large *response*
                # degrades to a per-request error instead.
                if pool is not None:
                    pool.rollback()
                self.stats.errors += 1
                frame = protocol.encode_frame(
                    "error",
                    {
                        "id": header.get("id"),
                        "error": (
                            f"response of {len(frame) - 4} bytes "
                            f"exceeds the {self.max_frame}-byte frame "
                            f"limit; raise max_frame or split the batch"
                        ),
                        "type": "ProtocolError",
                    },
                )
            elif pool is not None:
                # Commit before the write: a failed write means the
                # peer is gone, and its pool state dies with the
                # connection anyway.
                pool.commit()
            with contextlib.suppress(ConnectionError, RuntimeError):
                # A peer that disconnected mid-query simply loses its
                # response; the server must not hang or crash over it.
                writer.write(frame)
                await writer.drain()

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        rid,
        message: str,
        kind: str = "error",
    ) -> None:
        await self._send(
            writer,
            lock,
            "error",
            {"id": rid, "error": message, "type": kind},
        )


class ServerThread:
    """Run a :class:`QueryServer` on a daemon thread (tests, benchmarks
    and embedding into synchronous programs).

    >>> # doctest-style sketch; see tests/test_net.py for real use
    >>> # with ServerThread(session) as server:
    >>> #     client = RemoteSession(server.address)
    """

    def __init__(self, session, **server_kwargs) -> None:
        import threading

        self._session = session
        self._kwargs = server_kwargs
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None
        self.server: Optional[QueryServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-net-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if self.address is None:
            raise RuntimeError("server thread failed to start")

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # startup failures surface in ctor
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = QueryServer(self._session, **self._kwargs)
        try:
            await self.server.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self.address = self.server.address
        self._ready.set()
        await self._stop.wait()
        await self.server.drain()

    def stop(self) -> None:
        """Drain the server and join the thread (idempotent)."""
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    close = stop

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
