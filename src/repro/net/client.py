"""The synchronous client library: ``QuerySession`` over a socket.

:class:`RemoteSession` mirrors the serving-layer API --
:meth:`~RemoteSession.run`, :meth:`~RemoteSession.run_batch`,
:meth:`~RemoteSession.submit`, :meth:`~RemoteSession.close`, context
management -- and returns the very same
:class:`~repro.service.session.SessionResult` objects, rebuilt from
the wire (results arrive *factorised*; enumeration happens client
side, on demand).  Existing callers therefore switch tiers by changing
one constructor::

    session = QuerySession(db)                      # in-process
    session = RemoteSession(("10.0.0.5", 7432))     # served

Pipelining: :meth:`submit` sends the request and returns a
:class:`concurrent.futures.Future` without waiting; a background
reader thread matches responses (which the server may complete out of
order) back to futures by request id.  Many submissions can be in
flight on one connection -- that, multiplied across connections, is
what the server's wave coalescing feeds on.
"""

from __future__ import annotations

import itertools
import socket
import threading
import warnings
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.net import protocol
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    DEFAULT_PORT,
    ProtocolError,
)
from repro.obs import trace as obs_trace
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.service.session import SessionResult

Address = Union[str, Tuple[str, int]]

#: "No per-call timeout given -- use the session default."  A real
#: sentinel, because ``None`` is a meaningful timeout (wait forever).
_UNSET = object()


class NetError(RuntimeError):
    """A remote request failed: server-side error, lost connection,
    or protocol violation."""


def parse_address(address: Address) -> Tuple[str, int]:
    """``"host:port"`` / ``"host"`` / ``(host, port)`` -> (host, port)."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    text = str(address)
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        try:
            return host or "127.0.0.1", int(port_text)
        except ValueError as exc:
            raise ValueError(
                f"malformed address {address!r} (want host:port)"
            ) from exc
    return text, DEFAULT_PORT


def _as_query(query: Union[Query, str]) -> Query:
    return query if isinstance(query, Query) else parse_query(str(query))


class RemoteSession:
    """A connection to one ``repro serve`` server.

    Parameters
    ----------
    address:
        ``(host, port)``, ``"host:port"`` or ``"host"`` (default port
        :data:`~repro.net.protocol.DEFAULT_PORT`).
    timeout:
        Seconds :meth:`run`/:meth:`run_batch`/:meth:`stats` wait for
        their response (``None`` = forever).  :meth:`submit` futures
        are unaffected -- callers choose their own wait.
    connect_timeout:
        Seconds to wait for the TCP connect plus the server hello.
    max_frame:
        Reject inbound frames larger than this.
    wire_pool:
        Opt into the shared wire value pool (on by default, used only
        when the server advertises it): arena-encoded results arrive
        as columns over one per-connection interned pool, shipped
        incrementally, and all results on this connection share the
        receiver pool -- so shard parts recombine by id in
        ``ops.union``.  Set false to force plain self-contained blobs.
    reader_join_timeout:
        Seconds :meth:`close` waits for the reader thread to exit.  A
        reader still alive afterwards marks the session *defunct*
        (:attr:`defunct`), warns, and fails pending futures -- it is
        never silently leaked.
    """

    def __init__(
        self,
        address: Address = ("127.0.0.1", DEFAULT_PORT),
        timeout: Optional[float] = 60.0,
        connect_timeout: float = 10.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        wire_pool: bool = True,
        reader_join_timeout: float = 10.0,
    ) -> None:
        self.address = parse_address(address)
        self.timeout = timeout
        self.max_frame = max_frame
        self.reader_join_timeout = reader_join_timeout
        self._ids = itertools.count(1)
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        #: id -> (future, context); context tells the reader thread how
        #: to decode the response payload.
        self._pending: Dict[int, Tuple[Future, Tuple]] = {}
        self._closed = False
        self._defunct = False
        try:
            self._sock = socket.create_connection(
                self.address, timeout=connect_timeout
            )
        except OSError as exc:
            raise NetError(
                f"cannot connect to {self.address[0]}:"
                f"{self.address[1]}: {exc}"
            ) from exc
        try:
            hello = protocol.recv_frame(self._sock, self.max_frame)
        except (ProtocolError, OSError) as exc:
            self._sock.close()
            raise NetError(f"handshake failed: {exc}") from exc
        if hello is None or hello[0] != "hello":
            self._sock.close()
            raise NetError(
                f"{self.address[0]}:{self.address[1]} did not say hello "
                f"(got {hello[0] if hello else 'EOF'})"
            )
        #: The server's hello header: protocol version, encoding,
        #: shard layout, relation names, database version.
        self.server_info: Dict[str, Any] = hello[1]
        #: The connection's shared wire pool (decoder side); responses
        #: are decoded on the single reader thread, in arrival order,
        #: which is exactly the order the server cut the pool deltas.
        self._wire_pool = bool(
            wire_pool and self.server_info.get("wire_pool")
        )
        self._pool_dec = protocol.ArenaPoolDecoder()
        self._sock.settimeout(None)
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-net-client", daemon=True
        )
        self._reader.start()

    # -- the public QuerySession-shaped API --------------------------------

    def _await(self, rid: int, future: Future, timeout=_UNSET):
        """Block on a response; timeouts become :class:`NetError` and
        release the pending entry (a late response is then ignored).
        ``timeout`` overrides the session default for this one call
        (federation pollers scrape with a bound tighter than the
        query timeout)."""
        wait = self.timeout if timeout is _UNSET else timeout
        try:
            return future.result(wait)
        except (TimeoutError, _FutureTimeout):
            with self._state_lock:
                self._pending.pop(rid, None)
            raise NetError(
                f"no response from {self.address[0]}:"
                f"{self.address[1]} within {wait}s"
            ) from None

    def run(
        self, query: Union[Query, str], engine: str = "auto"
    ) -> SessionResult:
        """Evaluate one query on the server (blocking)."""
        query = _as_query(query)
        rid, future = self._request(
            "query",
            {"sql": str(query), "engine": engine},
            context=("result", query),
        )
        return self._absorb_spans(self._await(rid, future))

    def submit(
        self, query: Union[Query, str], engine: str = "auto"
    ) -> Future:
        """Pipelined submission: send now, resolve later.

        The returned future is not bound to :attr:`timeout`; callers
        choose their own wait in ``future.result(...)``.
        """
        query = _as_query(query)
        _, future = self._request(
            "query",
            {"sql": str(query), "engine": engine},
            context=("result", query),
        )
        return future

    def run_batch(
        self,
        queries: Sequence[Union[Query, str]],
        engine: str = "auto",
    ) -> List[SessionResult]:
        """Evaluate a batch in one round trip (server-side dedup)."""
        parsed = [_as_query(q) for q in queries]
        rid, future = self._request(
            "batch",
            {"sql": [str(q) for q in parsed], "engine": engine},
            context=("batch", parsed),
        )
        results = self._await(rid, future)
        for result in results:
            self._absorb_spans(result)
        return results

    def _absorb_spans(self, result: SessionResult) -> SessionResult:
        """Merge a result's server-side spans into the caller's active
        trace (if any), prefixed ``server:`` -- so one client-side
        trace shows the whole client -> server -> worker breakdown."""
        trace = obs_trace.current()
        if trace is not None and result.spans:
            trace.extend(result.spans, prefix="server:")
        return result

    def stats(self, timeout=_UNSET) -> Dict[str, Any]:
        """The server's ``STATS`` document: the unified registry
        snapshot (server / session / cache / queue / plan-store /
        slow-log counters) plus the request id."""
        rid, future = self._request("stats", {}, context=("stats",))
        return self._await(rid, future, timeout)

    def metrics(self, timeout=_UNSET) -> Dict[str, Any]:
        """The server's unified metrics snapshot (a plain nested
        dict; the same document the Prometheus endpoint flattens)."""
        snapshot, _ = self._await(
            *self._request("metrics", {}, context=("metrics",)),
            timeout,
        )
        return snapshot

    def metrics_text(self, timeout=_UNSET) -> str:
        """The server's metrics in Prometheus text exposition format."""
        _, text = self._await(
            *self._request("metrics", {}, context=("metrics",)),
            timeout,
        )
        return text

    # -- mutations ---------------------------------------------------------

    def extend_rows(
        self, relation: str, rows: Sequence[Sequence[object]]
    ) -> Dict[str, Any]:
        """Append ``rows`` to ``relation`` on the server.

        Returns the server's mutation receipt: ``op``, ``relation``,
        ``count`` (genuinely new rows) and the post-mutation
        ``db_version``.  The server applies the append through its
        live session database, so absorbable deltas keep served plans
        and cached results warm exactly as they would in-process.
        """
        return self._mutate("extend", relation, rows)

    def delete_rows(
        self, relation: str, rows: Sequence[Sequence[object]]
    ) -> Dict[str, Any]:
        """Delete ``rows`` from ``relation`` on the server; the receipt
        ``count`` says how many were actually present."""
        return self._mutate("delete", relation, rows)

    def _mutate(
        self,
        op: str,
        relation: str,
        rows: Sequence[Sequence[object]],
    ) -> Dict[str, Any]:
        normalised = [tuple(row) for row in rows]
        arity, payload = protocol.pack_rows(normalised)
        rid, future = self._request(
            "mutate",
            {"op": op, "relation": relation, "arity": arity},
            payload=payload,
            context=("mutate",),
        )
        return self._await(rid, future)

    # -- the worker protocol (RemoteExecutor) ------------------------------

    def submit_shard(
        self,
        query: Union[Query, str],
        tree: FTree,
        shard: int,
        fanout: str,
    ) -> Future:
        """Evaluate (query, shard) on the worker; resolves to
        ``(worker_seconds, FactorisedRelation, span_records)`` without
        projection."""
        query = _as_query(query)
        _, future = self._request(
            "shard",
            {"sql": str(query), "shard": int(shard), "fanout": fanout},
            payload=protocol.pack_blob(tree),
            context=("part",),
        )
        return future

    def submit_execute(
        self, query: Union[Query, str], tree: FTree
    ) -> Future:
        """Evaluate a whole query on the worker (projection applied);
        resolves to ``(worker_seconds, FactorisedRelation,
        span_records)``."""
        query = _as_query(query)
        _, future = self._request(
            "execute",
            {"sql": str(query)},
            payload=protocol.pack_blob(tree),
            context=("part",),
        )
        return future

    # -- shard ownership (ClusterMap rebalancing) --------------------------

    def own_shards(self, shards: Sequence[int]) -> Dict[str, Any]:
        """Tell the worker to start answering for ``shards``.

        Returns the ownership receipt (``owned``: the full post-change
        owned list, ``shard_count``) and mirrors it into
        :attr:`server_info`, so coordinator-side routing sees the new
        contract without a reconnect.
        """
        return self._change_ownership("own", shards)

    def disown_shards(self, shards: Sequence[int]) -> Dict[str, Any]:
        """Tell the worker to stop answering for ``shards``."""
        return self._change_ownership("disown", shards)

    def _change_ownership(
        self, kind: str, shards: Sequence[int]
    ) -> Dict[str, Any]:
        rid, future = self._request(
            kind,
            {"shards": [int(s) for s in shards]},
            context=("own",),
        )
        receipt = self._await(rid, future)
        self.server_info["owned_shards"] = list(
            receipt.get("owned") or ()
        )
        return receipt

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def defunct(self) -> bool:
        """True when close() could not join the reader thread: the
        session leaked a thread and must not be reused or retried."""
        return self._defunct

    def close(self) -> None:
        """Close the connection; pending futures fail with
        :class:`NetError`.  Idempotent."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        if threading.current_thread() is not self._reader:
            self._reader.join(timeout=self.reader_join_timeout)
            if self._reader.is_alive():
                # The reader is wedged (a hung recv despite the
                # shutdown above, or a stuck decode).  Joining forever
                # would hang the caller; returning silently would leak
                # the thread *and* strand every pending future.  Say
                # so, mark the session defunct, and fail the futures.
                self._defunct = True
                warnings.warn(
                    f"repro.net reader thread for {self.address[0]}:"
                    f"{self.address[1]} did not exit within "
                    f"{self.reader_join_timeout}s; session marked "
                    f"defunct and pending requests failed",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._fail_pending(
                    NetError(
                        "session closed with a stuck reader thread; "
                        "pending requests abandoned"
                    )
                )
                return
        self._fail_pending(NetError("session closed"))

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------

    def _request(
        self,
        kind: str,
        header: Dict[str, Any],
        payload: bytes = b"",
        context: Tuple = (),
    ) -> Tuple[int, Future]:
        rid = next(self._ids)
        future: Future = Future()
        if self._wire_pool and kind in (
            "query",
            "batch",
            "shard",
            "execute",
        ):
            header = {**header, "pool": True}
        if kind in ("query", "batch", "shard", "execute", "mutate"):
            # Carry the caller's trace context (plus our request id)
            # to the server: its trace -- and its slow-query log
            # entries -- then correlate back to this client request.
            ctx = obs_trace.context()
            if ctx is not None:
                header = {
                    **header,
                    "trace": {**ctx, "client": rid},
                }
        with self._state_lock:
            if self._closed:
                raise NetError("session is closed")
            self._pending[rid] = (future, context)
        frame = protocol.encode_frame(
            kind, {**header, "id": rid}, payload
        )
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as exc:
            with self._state_lock:
                self._pending.pop(rid, None)
            self.close()
            raise NetError(f"connection lost: {exc}") from exc
        return rid, future

    def _fail_pending(self, error: Exception) -> None:
        with self._state_lock:
            pending, self._pending = self._pending, {}
        for future, _ in pending.values():
            if not future.done():
                future.set_exception(error)

    def _read_loop(self) -> None:
        error: Optional[Exception] = None
        try:
            while True:
                frame = protocol.recv_frame(self._sock, self.max_frame)
                if frame is None:
                    break
                self._dispatch(*frame)
        except (ProtocolError, OSError) as exc:
            if not self._closed:
                error = NetError(f"connection lost: {exc}")
        finally:
            with self._state_lock:
                self._closed = True
            self._fail_pending(
                error or NetError("connection closed by server")
            )

    def _dispatch(
        self, kind: str, header: Dict[str, Any], payload: bytes
    ) -> None:
        rid = header.get("id")
        if rid is None:
            if kind == "error":
                # Connection-fatal server error (oversized/corrupt
                # frame): every in-flight request is lost.
                self._fail_pending(
                    NetError(f"server error: {header.get('error')}")
                )
            return
        with self._state_lock:
            entry = self._pending.pop(rid, None)
        if entry is None:
            # Response to a request we gave up on: its pooled payloads
            # still carry pool deltas the stream depends on -- absorb
            # them, or every later pooled result would desync.
            self._absorb_orphan(kind, header, payload)
            return
        future, context = entry
        try:
            future.set_result(
                self._decode(kind, header, payload, context)
            )
        except Exception as exc:
            future.set_exception(exc)

    def _absorb_orphan(
        self, kind: str, header: Dict[str, Any], payload: bytes
    ) -> None:
        """Apply the pool deltas of a response nobody is waiting for."""
        try:
            if kind == "result":
                if header.get("payload") == "fdbp-pool":
                    self._pool_dec.decode(payload)
            elif kind == "batch-result":
                offset = 0
                for meta in header.get("results") or []:
                    nbytes = int(meta.get("nbytes", 0))
                    part = payload[offset : offset + nbytes]
                    offset += nbytes
                    if meta.get("payload") == "fdbp-pool":
                        self._pool_dec.decode(part)
        except Exception:
            # A malformed orphan leaves the pool where it was; the
            # next pooled decode will report the desync loudly.
            pass

    def _decode(
        self,
        kind: str,
        header: Dict[str, Any],
        payload: bytes,
        context: Tuple,
    ):
        if kind == "error":
            raise NetError(
                f"server error ({header.get('type', 'error')}): "
                f"{header.get('error')}"
            )
        shape = context[0] if context else None
        if kind == "result" and shape == "result":
            return protocol.unpack_result(
                context[1], header, payload, self._pool_dec
            )
        if kind == "result" and shape == "part":
            if header.get("payload") == "fdbp-pool":
                fr = protocol.unpack_pooled(payload, self._pool_dec)
            else:
                fr = protocol.unpack_blob(payload)
            if not isinstance(fr, FactorisedRelation):
                raise NetError(
                    f"worker returned a {type(fr).__name__}, not a "
                    f"factorised relation"
                )
            return (
                float(header.get("elapsed", 0.0)),
                fr,
                list(header.get("spans") or ()),
            )
        if kind == "batch-result" and shape == "batch":
            return protocol.unpack_results(
                context[1], header["results"], payload, self._pool_dec
            )
        if kind == "stats-result" and shape == "stats":
            return header
        if kind == "metrics-result" and shape == "metrics":
            return header, payload.decode("utf-8")
        if kind == "mutate-result" and shape == "mutate":
            return header
        if kind in ("own-result", "disown-result") and shape == "own":
            return header
        raise NetError(
            f"unexpected {kind!r} response for a {shape!r} request"
        )
