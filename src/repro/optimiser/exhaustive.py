"""Exhaustive f-plan search (Section 4.2).

The space of f-plans is a directed graph: vertices are normalised
f-trees, edges are applicable operators (swaps anywhere; merges and
absorbs only between nodes whose classes must end up merged -- "any
valid f-plan will only merge nodes which end up merged in T_final").
The cost of a path is the *bottleneck* ``s(f) = max_i s(T_i)``, and
among the goal trees reachable at the minimal bottleneck we pick one
with the smallest ``s(T_final)`` -- the lexicographic order
``<max x <s(T)`` of Section 4.1.  Dijkstra's algorithm applies because
the bottleneck metric is monotone along paths.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from itertools import combinations
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.core.ftree import FTree
from repro.costs.cardinality import (
    Statistics,
    estimate_representation_size,
)
from repro.costs.cost_model import s_tree
from repro.optimiser.fplan import FPlan, Step
from repro.query.equivalence import UnionFind


class SearchExhausted(RuntimeError):
    """Raised when the state cap is hit before reaching a goal."""


def target_partition(
    tree: FTree, equalities: List[Tuple[str, str]]
) -> Dict[str, FrozenSet[str]]:
    """Map each attribute to its goal class (tree classes + equalities)."""
    uf = UnionFind(tree.attributes())
    for node in tree.iter_nodes():
        attrs = sorted(node.label)
        for other in attrs[1:]:
            uf.union(attrs[0], other)
    for left, right in equalities:
        uf.union(left, right)
    return {attr: uf.class_of(attr) for attr in tree.attributes()}


def _neighbours(
    tree: FTree, goal: Dict[str, FrozenSet[str]]
) -> Iterator[Tuple[Step, FTree]]:
    """All operator applications from ``tree``."""
    nodes = list(tree.iter_nodes())
    # Swaps: every (parent, child) pair.
    for node in nodes:
        parent = tree.parent_of(node)
        if parent is not None:
            step = Step(
                "swap", (min(parent.label), min(node.label))
            )
            yield step, step.transform_tree(tree)
    # Merges/absorbs: pairs of nodes in the same goal class.
    for left, right in combinations(nodes, 2):
        if goal[min(left.label)] != goal[min(right.label)]:
            continue
        parent_l = tree.parent_of(left)
        parent_r = tree.parent_of(right)
        same_parent = (
            (parent_l is None and parent_r is None)
            or (
                parent_l is not None
                and parent_r is not None
                and parent_l.label == parent_r.label
            )
        )
        if same_parent:
            step = Step("merge", (min(left.label), min(right.label)))
            yield step, step.transform_tree(tree)
        elif tree.is_ancestor(left, right):
            step = Step("absorb", (min(left.label), min(right.label)))
            yield step, step.transform_tree(tree)
        elif tree.is_ancestor(right, left):
            step = Step("absorb", (min(right.label), min(left.label)))
            yield step, step.transform_tree(tree)


def _is_goal(tree: FTree, goal: Dict[str, FrozenSet[str]]) -> bool:
    return all(
        node.label == goal[min(node.label)]
        for node in tree.iter_nodes()
    )


def exhaustive_fplan(
    tree: FTree,
    equalities: List[Tuple[str, str]],
    max_states: int = 200_000,
    stats: Optional[Statistics] = None,
) -> FPlan:
    """Optimal f-plan for a conjunction of equality selections.

    Runs Dijkstra with the bottleneck cost from the input f-tree over
    the operator graph; explores at most ``max_states`` distinct
    f-trees (a safety valve -- the experiments of Section 5 stay well
    below it).

    With ``stats`` given, the *estimate-based* cost measure of
    Section 4.1 is used instead of the asymptotic one: the cost of a
    plan is the sum of the estimated representation sizes of the
    intermediate and final f-trees (an additive metric, equally
    Dijkstra-compatible).  The paper reports both measures "lead to
    very similar choices of optimal f-plans".
    """
    goal = target_partition(tree, equalities)

    if stats is not None:
        cost_of: Dict[tuple, float] = {}

        def tree_cost(candidate: FTree):
            key = candidate.key()
            if key not in cost_of:
                cost_of[key] = estimate_representation_size(
                    candidate, stats
                )
            return cost_of[key]

        def combine(path_cost, candidate: FTree):
            return path_cost + tree_cost(candidate)

    else:

        def tree_cost(candidate: FTree):
            return s_tree(candidate)

        def combine(path_cost, candidate: FTree):
            return max(path_cost, s_tree(candidate))

    start_cost = tree_cost(tree)

    #: tree key -> (bottleneck, steps-from-start)
    dist: Dict[tuple, Tuple[Fraction, int]] = {
        tree.key(): (start_cost, 0)
    }
    back: Dict[tuple, Tuple[tuple, Step, FTree]] = {}
    counter = 0
    frontier: List[
        Tuple[Fraction, int, int, FTree]
    ] = [(start_cost, 0, counter, tree)]

    goals: List[Tuple[Fraction, FTree]] = []
    best_goal_bottleneck: Optional[Fraction] = None
    expanded = 0

    while frontier:
        bottleneck, steps, _, current = heapq.heappop(frontier)
        if dist.get(current.key(), (None, None)) != (bottleneck, steps):
            continue
        if (
            best_goal_bottleneck is not None
            and bottleneck > best_goal_bottleneck
        ):
            break  # all remaining paths are strictly worse
        if _is_goal(current, goal):
            goals.append((bottleneck, current))
            if best_goal_bottleneck is None:
                best_goal_bottleneck = bottleneck
            # Do NOT stop here: swaps from a goal reach other goal
            # trees at the same bottleneck, possibly with a smaller
            # final cost (the paper picks the cheapest goal among all
            # at minimal distance).
        expanded += 1
        if expanded > max_states:
            if goals:
                break
            raise SearchExhausted(
                f"no f-plan found within {max_states} states"
            )
        for step, neighbour in _neighbours(current, goal):
            cost = combine(bottleneck, neighbour)
            key = neighbour.key()
            known = dist.get(key)
            if known is None or (cost, steps + 1) < known:
                dist[key] = (cost, steps + 1)
                counter += 1
                back[key] = (current.key(), step, neighbour)
                heapq.heappush(
                    frontier, (cost, steps + 1, counter, neighbour)
                )

    if not goals:
        raise SearchExhausted("goal f-tree unreachable")

    # Lexicographic choice: minimal bottleneck, then minimal s(T_final).
    min_bottleneck = min(bottleneck for bottleneck, _ in goals)
    final = min(
        (
            candidate
            for bottleneck, candidate in goals
            if bottleneck == min_bottleneck
        ),
        key=lambda t: (tree_cost(t), dist[t.key()][1]),
    )

    # Reconstruct the step sequence.
    steps_rev: List[Step] = []
    key = final.key()
    while key != tree.key():
        prev_key, step, _ = back[key]
        steps_rev.append(step)
        key = prev_key
    steps_rev.reverse()
    return FPlan(tree, steps_rev)
