"""Query optimisation for factorised data (Section 4).

- :mod:`repro.optimiser.ftree_optimiser` -- optimal f-tree for a query
  on flat input (memoised DP with symmetry reduction; Experiment 1);
- :mod:`repro.optimiser.ftree_space` -- exhaustive enumeration of
  normalised f-trees (cross-checks and space-size reporting);
- :mod:`repro.optimiser.fplan` -- f-plans: operator sequences with
  their intermediate f-trees and bottleneck cost;
- :mod:`repro.optimiser.exhaustive` -- Dijkstra over the f-tree space
  (Section 4.2);
- :mod:`repro.optimiser.greedy` -- the polynomial greedy heuristic
  (Section 4.3).
"""

from repro.optimiser.fplan import FPlan, Step
from repro.optimiser.ftree_optimiser import (
    FTreeOptimiser,
    optimal_ftree,
    query_classes_and_edges,
)
from repro.optimiser.ftree_space import (
    count_normalised_ftrees,
    enumerate_normalised_ftrees,
)
from repro.optimiser.exhaustive import (
    exhaustive_fplan,
    SearchExhausted,
    target_partition,
)
from repro.optimiser.greedy import greedy_fplan

__all__ = [
    "count_normalised_ftrees",
    "enumerate_normalised_ftrees",
    "exhaustive_fplan",
    "FPlan",
    "FTreeOptimiser",
    "greedy_fplan",
    "optimal_ftree",
    "query_classes_and_edges",
    "SearchExhausted",
    "Step",
    "target_partition",
]
