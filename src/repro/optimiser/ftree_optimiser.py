"""Optimal f-tree search for a query over flat data (Experiment 1).

Finds, among all normalised f-trees of a query, one minimising the
size-bound parameter ``s(T)``.  The search exploits the recursive
structure of the space (see :mod:`repro.optimiser.ftree_space`) with
three accelerations that keep it fast at the paper's scale (A = 40
attributes, up to 8 relations, up to 9 equalities):

- **memoisation** on (component, ancestor-chain) pairs -- the cover of
  a leaf path depends only on the *set* of classes along it;
- **symmetry reduction**: classes covered by exactly the same edges
  are interchangeable, so only one per signature is tried as root;
- **branch & bound**: the fractional cover is monotone in the class
  set, so a root whose partial path already costs at least the best
  known subtree can be pruned.

Covers themselves are decomposed into edge-connected groups before
hitting the LP (the cover of a disconnected class set is the sum of
its groups' covers), which both shrinks the LPs and multiplies cache
hits.
"""

from __future__ import annotations

from fractions import Fraction
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.ftree import FNode, FTree
from repro.costs.cost_model import path_cover
from repro.query.hypergraph import Hypergraph
from repro.query.query import Query
from repro.relational.database import Database

Label = FrozenSet[str]


class FTreeOptimiser:
    """Minimal-``s(T)`` normalised f-tree over given classes and edges.

    >>> from repro.query.hypergraph import Hypergraph
    >>> opt = FTreeOptimiser(
    ...     [frozenset({"a"}), frozenset({"b"}), frozenset({"c"})],
    ...     Hypergraph([{"a", "b"}, {"b", "c"}]))
    >>> tree, cost = opt.optimise()
    >>> cost   # rooting at b gives paths {b,a} and {b,c}, each cover 1
    Fraction(1, 1)
    """

    def __init__(
        self,
        classes: Sequence[Label],
        edges: Hypergraph,
        time_budget: Optional[float] = None,
    ) -> None:
        """``time_budget`` (seconds) bounds the search: past the
        deadline the DP stops branching on root choices and commits to
        the first (best-lower-bound) candidate per component, turning
        into a greedy descent.  The returned tree is then possibly
        suboptimal but the call completes quickly -- benchmarks use
        this to keep pathological random instances bounded."""
        self.classes = [frozenset(c) for c in classes]
        self.edges = edges
        self.time_budget = time_budget
        self._deadline: Optional[float] = None
        self._memo: Dict[
            Tuple[FrozenSet[Label], FrozenSet[Label]],
            Tuple[Fraction, FNode],
        ] = {}
        self._cover_memo: Dict[FrozenSet[Label], Fraction] = {}
        self._signature: Dict[Label, FrozenSet[FrozenSet[str]]] = {
            label: frozenset(
                edge for edge in edges if edge & label
            )
            for label in self.classes
        }

    # -- covers ---------------------------------------------------------------

    def cover(self, classes: FrozenSet[Label]) -> Fraction:
        """Fractional cover of a class set, decomposed by connectivity."""
        cached = self._cover_memo.get(classes)
        if cached is not None:
            return cached
        total = Fraction(0)
        for group in self.edges.components(sorted(classes, key=sorted)):
            total += path_cover(list(group), self.edges.edges)
        self._cover_memo[classes] = total
        return total

    # -- search ---------------------------------------------------------------

    def optimise(self) -> Tuple[FTree, Fraction]:
        """Return an optimal normalised f-tree and its ``s(T)``."""
        if self.time_budget is not None:
            import time

            self._deadline = time.perf_counter() + self.time_budget
        components = self.edges.components(self.classes)
        roots: List[FNode] = []
        worst = Fraction(0)
        for component in components:
            cost, node = self._best(
                frozenset(component), frozenset()
            )
            roots.append(node)
            if cost > worst:
                worst = cost
        return FTree(roots, self.edges), worst

    def _representative_roots(
        self, component: FrozenSet[Label]
    ) -> List[Label]:
        """One candidate root per edge-signature (symmetry classes)."""
        seen: Dict[FrozenSet[FrozenSet[str]], Label] = {}
        for label in sorted(component, key=sorted):
            signature = self._signature[label]
            if signature not in seen:
                seen[signature] = label
        return list(seen.values())

    def _best(
        self, component: FrozenSet[Label], ancestors: FrozenSet[Label]
    ) -> Tuple[Fraction, FNode]:
        """Cheapest subtree over ``component`` below chain ``ancestors``."""
        key = (component, ancestors)
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        candidates = self._representative_roots(component)
        # Order by the partial-path lower bound so good roots come
        # first and the bound prunes more.
        scored = sorted(
            (self.cover(ancestors | {root}), root)
            for root in candidates
        )
        if self._deadline is not None:
            import time

            if time.perf_counter() > self._deadline:
                scored = scored[:1]  # greedy fallback past deadline
        best_cost: Optional[Fraction] = None
        best_node: Optional[FNode] = None
        for lower, root in scored:
            if best_cost is not None and lower >= best_cost:
                break  # monotone: no deeper path can be cheaper
            rest = component - {root}
            path = ancestors | {root}
            if not rest:
                cost = lower
                children: List[FNode] = []
            else:
                cost = Fraction(0)
                children = []
                pruned = False
                for sub in self.edges.components(
                    sorted(rest, key=sorted)
                ):
                    sub_cost, sub_node = self._best(
                        frozenset(sub), path
                    )
                    children.append(sub_node)
                    if sub_cost > cost:
                        cost = sub_cost
                    if best_cost is not None and cost >= best_cost:
                        pruned = True
                        break
                if pruned:
                    continue
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_node = FNode(root, children)
        assert best_cost is not None and best_node is not None
        self._memo[key] = (best_cost, best_node)
        return self._memo[key]


def query_classes_and_edges(
    database: Database, query: Query
) -> Tuple[List[Label], Hypergraph]:
    """Attribute classes and dependency edges of a query over a schema."""
    attrs: List[str] = []
    for name in query.relations:
        attrs.extend(database[name].attributes)
    classes = query.attribute_classes(attrs)
    edges = Hypergraph(
        frozenset(database[name].attributes) for name in query.relations
    )
    return [frozenset(c) for c in classes], edges


def optimal_ftree(
    database: Database, query: Query
) -> Tuple[FTree, Fraction]:
    """Optimal f-tree of ``query``'s result over ``database``'s schema.

    The classes are those of *all* attributes of the joined relations
    (projection is applied after factorisation, cf. Section 3.4), and
    the dependency edges are the relation schemas.
    """
    classes, edges = query_classes_and_edges(database, query)
    return FTreeOptimiser(classes, edges).optimise()
