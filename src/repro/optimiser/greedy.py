"""The greedy f-plan heuristic (Section 4.3).

The greedy optimiser restricts the search in two ways: it only
restructures the nodes participating in selection conditions, and it
orders the conditions greedily by the cost of their individual
restructure-then-select plans.  For each condition ``A = B`` it
considers the paper's three restructuring scenarios (plus the direct
merge when the nodes are already siblings):

0. merge directly, if ``A`` and ``B`` are siblings;
1. swap ``A`` upward until it is an ancestor of ``B``, then absorb;
2. symmetrically, promote ``B`` over ``A``, then absorb;
3. if the nodes sit in disjoint trees, promote both to roots, making
   them siblings at the topmost level, then merge.

The cheapest scenario (by the bottleneck ``s``-cost of its
intermediate trees) becomes the condition's plan; the conditions are
then executed cheapest-first, re-evaluating after each one.  Runtime
is polynomial in the f-tree size, 2-3 orders of magnitude below the
exhaustive search in the experiments (Figure 9), at a small loss of
plan quality (Figure 6).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.ftree import FTree
from repro.costs.cardinality import (
    Statistics,
    estimate_plan_cost,
)
from repro.costs.cost_model import PlanCost, s_tree
from repro.optimiser.fplan import FPlan, Step


def _promote_to_ancestor(
    tree: FTree, a_attr: str, b_attr: str
) -> Optional[List[Step]]:
    """Swap ``a`` upward until it dominates ``b``; then absorb.

    Returns ``None`` when impossible (the nodes are in disjoint trees).
    """
    steps: List[Step] = []
    current = tree
    while True:
        node_a = current.node_of(a_attr)
        node_b = current.node_of(b_attr)
        if current.is_ancestor(node_a, node_b):
            break
        parent = current.parent_of(node_a)
        if parent is None:
            return None
        step = Step("swap", (min(parent.label), min(node_a.label)))
        current = step.transform_tree(current)
        steps.append(step)
    steps.append(
        Step(
            "absorb",
            (
                min(current.node_of(a_attr).label),
                min(current.node_of(b_attr).label),
            ),
        )
    )
    return steps


def _promote_to_root(tree: FTree, attr: str) -> List[Step]:
    """Swaps lifting the node holding ``attr`` to a root."""
    steps: List[Step] = []
    current = tree
    while True:
        node = current.node_of(attr)
        parent = current.parent_of(node)
        if parent is None:
            return steps
        step = Step("swap", (min(parent.label), min(node.label)))
        current = step.transform_tree(current)
        steps.append(step)


def _apply_steps(tree: FTree, steps: Sequence[Step]) -> List[FTree]:
    """All trees visited by ``steps`` (including the input)."""
    trees = [tree]
    for step in steps:
        trees.append(step.transform_tree(trees[-1]))
    return trees


def _scenarios(
    tree: FTree, a_attr: str, b_attr: str
) -> List[List[Step]]:
    """Candidate restructure+select step lists for one condition."""
    node_a = tree.node_of(a_attr)
    node_b = tree.node_of(b_attr)
    candidates: List[List[Step]] = []

    parent_a = tree.parent_of(node_a)
    parent_b = tree.parent_of(node_b)
    same_parent = (
        (parent_a is None and parent_b is None)
        or (
            parent_a is not None
            and parent_b is not None
            and parent_a.label == parent_b.label
        )
    )
    if same_parent:
        candidates.append(
            [Step("merge", (min(node_a.label), min(node_b.label)))]
        )
    for first, second in ((a_attr, b_attr), (b_attr, a_attr)):
        scenario = _promote_to_ancestor(tree, first, second)
        if scenario is not None:
            candidates.append(scenario)
    in_disjoint_trees = _promote_to_ancestor(
        tree, a_attr, b_attr
    ) is None
    if in_disjoint_trees and not same_parent:
        steps = _promote_to_root(tree, a_attr)
        middle = _apply_steps(tree, steps)[-1]
        steps = steps + _promote_to_root(middle, b_attr)
        final = _apply_steps(tree, steps)[-1]
        steps.append(
            Step(
                "merge",
                (
                    min(final.node_of(a_attr).label),
                    min(final.node_of(b_attr).label),
                ),
            )
        )
        candidates.append(steps)
    return candidates


def _fragment_cost(
    tree: FTree,
    steps: Sequence[Step],
    stats: Optional[Statistics] = None,
):
    trees = _apply_steps(tree, steps)
    if stats is not None:
        # Estimate-based measure (Section 4.1): summed estimated
        # sizes.  Wrapped in a PlanCost-like tuple for comparability.
        total = estimate_plan_cost(trees, stats)
        final = estimate_plan_cost([trees[-1]], stats)
        return PlanCost.of_floats(total, final, len(steps))
    return PlanCost.of_trees(trees)


def greedy_fplan(
    tree: FTree,
    equalities: Sequence[Tuple[str, str]],
    stats: Optional[Statistics] = None,
) -> FPlan:
    """Greedy f-plan for a conjunction of equality conditions.

    With ``stats``, candidate restructurings are ranked by the
    estimate-based cost measure instead of the asymptotic one.

    >>> from repro.core.ftree import FTree
    >>> t = FTree.from_nested(
    ...     [("a", [("b", [])]), ("c", [("d", [])])],
    ...     edges=[{"a", "b"}, {"c", "d"}])
    >>> plan = greedy_fplan(t, [("b", "d")])
    >>> plan.output_tree.node_of("b").label == frozenset({"b", "d"})
    True
    """
    all_steps: List[Step] = []
    current = tree
    pending = list(equalities)
    while True:
        # Conditions whose attributes already share a node are done.
        pending = [
            (a, b)
            for a, b in pending
            if current.node_of(a).label != current.node_of(b).label
        ]
        if not pending:
            break
        best: Optional[
            Tuple[PlanCost, int, List[Step], Tuple[str, str]]
        ] = None
        for index, (a, b) in enumerate(pending):
            for scenario in _scenarios(current, a, b):
                cost = _fragment_cost(current, scenario, stats)
                key = (cost, index, scenario, (a, b))
                if best is None or (cost, len(scenario)) < (
                    best[0],
                    len(best[2]),
                ):
                    best = key
        assert best is not None
        _, _, steps, chosen = best
        all_steps.extend(steps)
        current = _apply_steps(current, steps)[-1]
        pending.remove(chosen)
    return FPlan(tree, all_steps)
