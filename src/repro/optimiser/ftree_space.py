"""Enumeration of the normalised f-trees of a query.

Valid f-trees of a query are rooted forests over the attribute classes
that satisfy the path constraint.  For *normalised* trees the space has
a clean recursive structure: the forest has exactly one tree per
edge-connected component of the classes, and within a component any
class can be the root, with the components of the remainder becoming
the children subtrees (each such component necessarily touches the
root through the edge that connected it, so normalisation holds by
construction).

This module is used by the tests (exhaustive cross-checks of the DP
optimiser) and by :mod:`repro.optimiser.ftree_optimiser` for tiny
inputs; the DP in that module explores the same space with memoisation
and symmetry reduction instead of materialising it.
"""

from __future__ import annotations

from itertools import product as iproduct
from typing import FrozenSet, Iterator, List, Sequence, Tuple

from repro.core.ftree import FNode, FTree
from repro.query.hypergraph import Hypergraph

Label = FrozenSet[str]


def _component_trees(
    labels: Tuple[Label, ...], edges: Hypergraph
) -> Iterator[FNode]:
    """All normalised subtrees over one edge-connected component."""
    for root in labels:
        rest = tuple(lab for lab in labels if lab != root)
        if not rest:
            yield FNode(root)
            continue
        subcomponents = edges.components(list(rest))
        generators = [
            list(_component_trees(tuple(sub), edges))
            for sub in subcomponents
        ]
        for combo in iproduct(*generators):
            yield FNode(root, list(combo))


def enumerate_normalised_ftrees(
    classes: Sequence[Label], edges: Hypergraph
) -> Iterator[FTree]:
    """Yield every normalised f-tree over ``classes`` w.r.t. ``edges``.

    >>> from repro.query.hypergraph import Hypergraph
    >>> h = Hypergraph([{"a", "b"}])
    >>> trees = list(enumerate_normalised_ftrees(
    ...     [frozenset({"a"}), frozenset({"b"})], h))
    >>> len(trees)  # chain a-b and chain b-a
    2
    """
    components = edges.components(list(classes))
    generators = [
        list(_component_trees(tuple(comp), edges))
        for comp in components
    ]
    for combo in iproduct(*generators):
        yield FTree(list(combo), edges)


def count_normalised_ftrees(
    classes: Sequence[Label], edges: Hypergraph
) -> int:
    """Number of normalised f-trees (for experiment reporting)."""
    return sum(1 for _ in enumerate_normalised_ftrees(classes, edges))
