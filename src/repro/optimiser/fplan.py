"""F-plans: sequences of f-plan operators (Section 4).

An :class:`FPlan` records the operator steps chosen by an optimiser,
together with every intermediate f-tree -- the trees determine the
plan's cost ``s(f) = max_i s(T_i)`` and the final factorisation's cost
``s(T_final)``.  Executing a plan replays the same steps on a
:class:`~repro.core.factorised.FactorisedRelation`, asserting that the
f-trees produced on data match the trees predicted at planning time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro import ops
from repro.core.factorised import FactorisedRelation
from repro.core.ftree import FTree
from repro.costs.cost_model import PlanCost


@dataclass(frozen=True)
class Step:
    """One f-plan operator application.

    ``kind`` is one of ``swap`` (args: parent attr, child attr),
    ``merge`` (two sibling attrs), ``absorb`` (ancestor attr,
    descendant attr) or ``push`` (pushed node's attr).
    """

    kind: str
    args: Tuple[str, ...]

    def transform_tree(self, tree: FTree) -> FTree:
        if self.kind == "swap":
            return ops.swap_tree(tree, *self.args)
        if self.kind == "merge":
            return ops.merge_tree(tree, *self.args)
        if self.kind == "absorb":
            return ops.absorb_tree(tree, *self.args)
        if self.kind == "push":
            return ops.push_up_tree(tree, *self.args)
        raise ValueError(f"unknown step kind {self.kind!r}")

    def apply(self, fr: FactorisedRelation) -> FactorisedRelation:
        if self.kind == "swap":
            return ops.swap(fr, *self.args)
        if self.kind == "merge":
            return ops.merge(fr, *self.args)
        if self.kind == "absorb":
            return ops.absorb(fr, *self.args)
        if self.kind == "push":
            return ops.push_up(fr, *self.args)
        raise ValueError(f"unknown step kind {self.kind!r}")

    def __str__(self) -> str:
        symbol = {
            "swap": "chi",
            "merge": "mu",
            "absorb": "alpha",
            "push": "psi",
        }[self.kind]
        return f"{symbol}({', '.join(self.args)})"


class FPlan:
    """A sequence of steps with its intermediate f-trees and cost."""

    __slots__ = ("steps", "trees", "cost", "__weakref__")

    def __init__(self, input_tree: FTree, steps: Sequence[Step]) -> None:
        self.steps: Tuple[Step, ...] = tuple(steps)
        trees: List[FTree] = [input_tree]
        for step in self.steps:
            trees.append(step.transform_tree(trees[-1]))
        self.trees: Tuple[FTree, ...] = tuple(trees)
        self.cost: PlanCost = PlanCost.of_trees(self.trees)

    @property
    def input_tree(self) -> FTree:
        return self.trees[0]

    @property
    def output_tree(self) -> FTree:
        return self.trees[-1]

    def execute(self, fr: FactorisedRelation) -> FactorisedRelation:
        """Replay the plan on data; checks tree agreement per step.

        Arena-backed relations run the whole plan as one compiled
        chain of prepared columnar kernels (weakly cached per plan,
        see :mod:`repro.ops.arena_kernels`); per-step tree agreement
        is then checked once at compile time instead of per execution.
        The kernel-at-a-time loop below doubles as the fallback and
        the differential oracle.
        """
        if fr.tree.key() != self.input_tree.key():
            raise ValueError(
                "plan input f-tree does not match the relation's f-tree"
            )
        if fr.encoding == "arena" and self.steps:
            from repro.ops.arena_kernels import compiled_plan_for

            return compiled_plan_for(self).execute(fr)
        current = fr
        for step, expected in zip(self.steps, self.trees[1:]):
            current = step.apply(current)
            if current.tree.key() != expected.key():
                raise AssertionError(
                    f"step {step} produced an unexpected f-tree"
                )
        return current

    def then(self, more: Sequence[Step]) -> "FPlan":
        """A new plan extending this one."""
        return FPlan(self.input_tree, list(self.steps) + list(more))

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        if not self.steps:
            return "<identity f-plan>"
        return " ; ".join(str(step) for step in self.steps)

    def __repr__(self) -> str:
        return f"FPlan({self}, cost={self.cost!r})"
