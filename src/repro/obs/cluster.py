"""The cluster-wide observability plane: one view of a worker fleet.

PR 8 made every *process* legible (one registry, one snapshot); PR 9
made the fleet survivable (replicas, retries, quarantine).  This
module makes the fleet legible *as one system*: a
:class:`ClusterFederation` scrapes every worker's existing ``metrics``
wire frame -- with bounded timeouts, so a dead or wedged worker can
never hang the poll -- and merges the per-process snapshots into one
namespaced cluster view:

- ``worker[i].server.*`` -- each worker's own counters, verbatim,
  plus per-worker **liveness** and **staleness age** (seconds since
  the last successful scrape);
- **roll-ups** -- numeric leaves summed across workers (gauges that
  are not additive, e.g. ``peak_pending``/``uptime``, take the max);
- a **shard heat map** -- the per-shard query/row/latency counters
  the workers record on their execute path, aggregated against the
  :class:`~repro.net.cluster.ClusterMap` replica chains so load
  imbalance is visible next to who owns what;
- the :func:`advise` **rebalance advisor** -- a pure function over
  that view emitting concrete ``set_workers``/``replica-chain``
  recommendations with reasons: the decision layer the ROADMAP's
  auto-rebalancer will act on (actuation stays with the operator).

The view is a plain nested dict (JSON-safe), rendered three ways:
``repro cluster-status`` (text, via :func:`repro.obs.report.
cluster_lines`), ``--prometheus`` (worker-labelled exposition via
:meth:`ClusterFederation.prometheus_text`), and ``--json`` (the view
verbatim).  :meth:`ClusterFederation.serve_http` additionally exposes
the labelled exposition on a coordinator-side HTTP port.

Network imports stay function-local: :mod:`repro.net` already imports
:mod:`repro.obs`, and this module must not close that cycle at import
time.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["ClusterFederation", "advise"]

#: Snapshot keys whose cross-worker aggregate is a max, not a sum:
#: high-water marks, clocks and configuration are not additive.
_MAX_KEYS = frozenset(
    {
        "uptime",
        "db_version",
        "max_pending",
        "max_frame",
        "capacity",
        "threshold",
        "max_bytes",
        "shard_count",
    }
)


def _merge_numeric(into: Dict[str, Any], data: Dict[str, Any]) -> None:
    """Fold ``data``'s numeric leaves into ``into`` (sum, or max for
    high-water/config keys).  Strings, lists and ``None`` are
    identity, not metrics -- same policy as the Prometheus flattener."""
    for key, value in data.items():
        if isinstance(value, dict):
            _merge_numeric(into.setdefault(key, {}), value)
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            if key in _MAX_KEYS or "peak" in key:
                into[key] = max(into.get(key, value), value)
            else:
                into[key] = into.get(key, 0) + value


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _flatten_labelled(
    lines: List[str],
    prefix: str,
    data: Dict[str, Any],
    label: str,
    seen_types: set,
) -> None:
    """Numeric leaves of ``data`` as ``<prefix>_<path>{<label>} v``."""
    for key in sorted(data, key=str):
        value = data[key]
        name = f"{prefix}_{str(key).replace('-', '_')}"
        if isinstance(value, dict):
            _flatten_labelled(lines, name, value, label, seen_types)
        elif isinstance(value, bool):
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{{{label}}} {int(value)}")
        elif isinstance(value, (int, float)):
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{{{label}}} {value}")


def _parse_key(address) -> str:
    """``"host:port"`` / ``(host, port)`` -> the canonical key."""
    if isinstance(address, tuple):
        host, port = address
        return f"{host}:{int(port)}"
    text = str(address)
    if ":" not in text:
        raise ValueError(
            f"worker address {address!r} needs a port (host:port)"
        )
    host, _, port = text.rpartition(":")
    return f"{host or '127.0.0.1'}:{int(port)}"


class ClusterFederation:
    """Scrape a worker fleet's ``metrics`` frames into one view.

    Parameters
    ----------
    workers:
        Worker addresses (``"host:port"`` strings or tuples) -- the
        same list a :class:`~repro.net.cluster.ReplicatedExecutor`
        routes over.
    replication_factor:
        Replicas per shard on the ring the heat map is drawn against.
    connect_timeout / request_timeout:
        Per-worker bounds on the TCP connect (plus hello) and on the
        ``metrics`` response.  Workers are scraped concurrently and
        every wait is bounded, so one dead or slow worker delays a
        poll by at most these timeouts and can never hang it.
    shard_count:
        Usually learned from the first live worker's hello; pass it
        explicitly to draw the ring before any worker answers.
    """

    def __init__(
        self,
        workers: Sequence[Any],
        replication_factor: int = 2,
        connect_timeout: float = 2.0,
        request_timeout: float = 5.0,
        shard_count: Optional[int] = None,
    ) -> None:
        self.keys: Tuple[str, ...] = tuple(
            _parse_key(w) for w in workers
        )
        if not self.keys:
            raise ValueError("ClusterFederation needs at least one worker")
        if len(set(self.keys)) != len(self.keys):
            raise ValueError(f"duplicate worker addresses in {self.keys}")
        self.replication_factor = max(1, int(replication_factor))
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.shard_count = shard_count
        self.polls = 0
        self.scrape_failures = 0
        self._lock = threading.Lock()
        self._snapshots: Dict[str, Optional[Dict[str, Any]]] = {
            key: None for key in self.keys
        }
        self._info: Dict[str, Dict[str, Any]] = {key: {} for key in self.keys}
        self._last_ok: Dict[str, Optional[float]] = {
            key: None for key in self.keys
        }
        self._live: Dict[str, bool] = {key: False for key in self.keys}
        self._errors: Dict[str, Optional[str]] = {
            key: None for key in self.keys
        }
        self._worker_polls: Dict[str, int] = {key: 0 for key in self.keys}
        self._worker_failures: Dict[str, int] = {
            key: 0 for key in self.keys
        }
        self._map = None
        self._poller: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._http_server = None

    # -- scraping ----------------------------------------------------------

    def _scrape(self, key: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """One bounded scrape of one worker: (snapshot, hello info)."""
        from repro.net.client import RemoteSession

        session = RemoteSession(
            key,
            timeout=self.request_timeout,
            connect_timeout=self.connect_timeout,
            reader_join_timeout=1.0,
        )
        try:
            snapshot = session.metrics()
            snapshot.pop("id", None)
            return snapshot, dict(session.server_info)
        finally:
            session.close()

    def poll(self) -> Dict[str, bool]:
        """One federation round: scrape every worker concurrently.

        Returns ``{worker: scraped_ok}``.  Failures (refused, timed
        out, mid-frame death) mark the worker not-live; its last good
        snapshot is kept so the view can still show what it *was*
        doing, aged by staleness.
        """
        budget = self.connect_timeout + (self.request_timeout or 30.0) + 5.0
        results: Dict[str, bool] = {}
        with ThreadPoolExecutor(
            max_workers=len(self.keys),
            thread_name_prefix="repro-obs-scrape",
        ) as pool:
            futures = {
                key: pool.submit(self._scrape, key) for key in self.keys
            }
            for key, future in futures.items():
                try:
                    snapshot, info = future.result(budget)
                except (Exception, _FutureTimeout) as exc:
                    results[key] = False
                    with self._lock:
                        self.scrape_failures += 1
                        self._worker_polls[key] += 1
                        self._worker_failures[key] += 1
                        self._live[key] = False
                        self._errors[key] = str(exc) or type(exc).__name__
                else:
                    results[key] = True
                    with self._lock:
                        self._worker_polls[key] += 1
                        self._snapshots[key] = snapshot
                        self._info[key] = info
                        self._last_ok[key] = time.monotonic()
                        self._live[key] = True
                        self._errors[key] = None
                        if (
                            self.shard_count is None
                            and info.get("sharded")
                            and info.get("shard_count")
                        ):
                            self.shard_count = int(info["shard_count"])
        with self._lock:
            self.polls += 1
        return results

    # -- background polling ------------------------------------------------

    def start(self, interval: float = 2.0) -> None:
        """Poll on a daemon thread every ``interval`` seconds until
        :meth:`stop` (idempotent)."""
        if self._poller is not None and self._poller.is_alive():
            return
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.is_set():
                self.poll()
                self._stop.wait(interval)

        self._poller = threading.Thread(
            target=_loop, name="repro-obs-poller", daemon=True
        )
        self._poller.start()

    def stop(self) -> None:
        self._stop.set()
        if self._poller is not None:
            self._poller.join(timeout=30)
            self._poller = None
        if self._http_server is not None:
            self._http_server.shutdown()
            self._http_server.server_close()
            self._http_server = None

    close = stop

    def __enter__(self) -> "ClusterFederation":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the ring ----------------------------------------------------------

    def _cluster_map(self):
        if self.shard_count is None:
            return None
        if (
            self._map is None
            or self._map.shard_count != self.shard_count
        ):
            from repro.net.cluster import ClusterMap

            self._map = ClusterMap(
                self.keys, self.shard_count, self.replication_factor
            )
        return self._map

    # -- the federated view ------------------------------------------------

    def view(self) -> Dict[str, Any]:
        """The merged cluster view (a plain JSON-safe nested dict)."""
        now = time.monotonic()
        with self._lock:
            snapshots = dict(self._snapshots)
            info = {k: dict(v) for k, v in self._info.items()}
            last_ok = dict(self._last_ok)
            live = dict(self._live)
            errors = dict(self._errors)
            worker_polls = dict(self._worker_polls)
            worker_failures = dict(self._worker_failures)
        cmap = self._cluster_map()
        ring = cmap.assignments() if cmap is not None else {}
        workers: Dict[str, Any] = {}
        rollup: Dict[str, Any] = {}
        heat_shards: Dict[str, Dict[str, Any]] = {}
        worker_load: Dict[str, float] = {}
        for i, key in enumerate(self.keys):
            snapshot = snapshots[key]
            staleness = (
                None if last_ok[key] is None else now - last_ok[key]
            )
            heat = (snapshot or {}).get("heat") or {}
            load = sum(
                float(entry.get("queries", 0)) for entry in heat.values()
            )
            worker_load[key] = load
            for shard, entry in heat.items():
                agg = heat_shards.setdefault(
                    str(shard),
                    {"queries": 0, "rows": 0, "seconds": 0.0},
                )
                agg["queries"] += int(entry.get("queries", 0))
                agg["rows"] += int(entry.get("rows", 0))
                agg["seconds"] += float(entry.get("seconds", 0.0))
            workers[f"worker[{i}]"] = {
                "address": key,
                "live": live[key],
                "staleness": staleness,
                "error": errors[key],
                "polls": worker_polls[key],
                "failures": worker_failures[key],
                "db_version": info[key].get("db_version"),
                "owned_shards": info[key].get("owned_shards"),
                "ring_shards": sorted(ring.get(key, ())),
                "heat_queries": load,
                "server": (snapshot or {}).get("server"),
                "cluster": (snapshot or {}).get("cluster"),
                "snapshot": snapshot,
            }
            if snapshot is not None:
                _merge_numeric(rollup, snapshot)
        for shard, entry in heat_shards.items():
            if cmap is not None and int(shard) < cmap.shard_count:
                chain = list(cmap.replicas_for(int(shard)))
                entry["replicas"] = chain
                entry["primary"] = chain[0]
        loads = [worker_load[k] for k in self.keys]
        mean_load = sum(loads) / len(loads) if loads else 0.0
        skew = (
            max(loads) / mean_load if loads and mean_load > 0 else None
        )
        return {
            "workers_total": len(self.keys),
            "live_workers": sum(1 for key in self.keys if live[key]),
            "polls": self.polls,
            "scrape_failures": self.scrape_failures,
            "shard_count": self.shard_count,
            "replication_factor": self.replication_factor,
            "workers": workers,
            "rollup": rollup,
            "heat": {
                "shards": dict(
                    sorted(heat_shards.items(), key=lambda kv: int(kv[0]))
                ),
                "worker_load": worker_load,
                "skew": skew,
            },
        }

    def counters(self) -> Dict[str, Any]:
        """The ``federation`` collector namespace for a coordinator's
        own registry (poll counts and liveness; the full view stays
        behind :meth:`view` -- it is too large for every snapshot)."""
        with self._lock:
            return {
                "workers": len(self.keys),
                "live_workers": sum(self._live.values()),
                "polls": self.polls,
                "scrape_failures": self.scrape_failures,
            }

    # -- exposition --------------------------------------------------------

    def prometheus_text(
        self, view: Optional[Dict[str, Any]] = None
    ) -> str:
        """The federated view as worker-labelled Prometheus text.

        Unlike :meth:`~repro.obs.metrics.MetricsRegistry.
        prometheus_text` (one process, no labels), every per-worker
        family carries a ``worker="host:port"`` label and every heat
        family a ``shard="i"`` label -- the standard multi-target
        shape, so one scrape of the coordinator graphs the fleet.
        """
        view = view or self.view()
        lines: List[str] = []
        for name, value in (
            ("repro_cluster_workers", view["workers_total"]),
            ("repro_cluster_live_workers", view["live_workers"]),
            ("repro_cluster_polls", view["polls"]),
            ("repro_cluster_scrape_failures", view["scrape_failures"]),
            ("repro_cluster_shard_count", view["shard_count"] or 0),
        ):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {value}")
        seen_types: set = set()
        for worker in view["workers"].values():
            label = f'worker="{_escape_label(worker["address"])}"'
            for name, value in (
                ("repro_worker_up", int(worker["live"])),
                (
                    "repro_worker_staleness_seconds",
                    (
                        worker["staleness"]
                        if worker["staleness"] is not None
                        else -1
                    ),
                ),
                ("repro_worker_scrape_failures", worker["failures"]),
                ("repro_worker_heat_queries", worker["heat_queries"]),
            ):
                if name not in seen_types:
                    seen_types.add(name)
                    lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name}{{{label}}} {value}")
            if worker["server"]:
                _flatten_labelled(
                    lines,
                    "repro_worker_server",
                    worker["server"],
                    label,
                    seen_types,
                )
        for shard, entry in view["heat"]["shards"].items():
            label = f'shard="{_escape_label(shard)}"'
            for field in ("queries", "rows", "seconds"):
                name = f"repro_shard_{field}"
                if name not in seen_types:
                    seen_types.add(name)
                    lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name}{{{label}}} {entry[field]}")
        return "\n".join(lines) + "\n"

    def serve_http(self, port: int = 0, host: str = "127.0.0.1"):
        """Expose the labelled exposition on an HTTP port (daemon
        thread); returns the bound ``(host, port)``.

        Same hygiene contract as the worker endpoint: ``GET``/``HEAD``
        on ``/metrics`` (or ``/``), the Prometheus content type, 404
        for anything else.
        """
        import http.server

        federation = self

        class _Handler(http.server.BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.0"

            def _answer(self, send_body: bool) -> None:
                if self.path.split("?")[0] not in ("/metrics", "/"):
                    body = b"not found\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    if send_body:
                        self.wfile.write(body)
                    return
                body = federation.prometheus_text().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                if send_body:
                    self.wfile.write(body)

            def do_GET(self) -> None:
                self._answer(send_body=True)

            def do_HEAD(self) -> None:
                self._answer(send_body=False)

            def log_message(self, *args) -> None:  # quiet by design
                pass

        server = http.server.ThreadingHTTPServer((host, port), _Handler)
        server.daemon_threads = True
        self._http_server = server
        thread = threading.Thread(
            target=server.serve_forever,
            name="repro-obs-cluster-http",
            daemon=True,
        )
        thread.start()
        return server.server_address[:2]


# -- the rebalance advisor ---------------------------------------------------


def advise(
    view: Dict[str, Any],
    heat_skew_threshold: float = 2.0,
    quarantine_threshold: int = 3,
    cluster: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Concrete rebalance recommendations for a federated view.

    A pure function -- no sockets, no clocks -- over the dict
    :meth:`ClusterFederation.view` returns (or any synthetic one a
    test builds), so the decision layer is unit-testable without a
    fleet.  Three signals, in priority order:

    1. **liveness** -- a down worker should leave the membership:
       ``set_workers`` over the live workers, naming the shards that
       just lost a replica;
    2. **quarantine rate** -- a live worker a coordinator keeps
       quarantining (``cluster``: a ``ReplicatedExecutor``'s counters
       dict with ``per_worker`` attribution) is flagged for removal
       before it fails outright;
    3. **heat skew** -- when the busiest worker carries more than
       ``heat_skew_threshold`` times the mean load, move its hottest
       shard's serving duty to the coolest live worker
       (``replica-chain``).

    Returns a list of ``{"action", ..., "reason"}`` dicts, most urgent
    first; empty means the cluster looks healthy.
    """
    recommendations: List[Dict[str, Any]] = []
    workers = view.get("workers") or {}
    states = list(workers.values())
    live = [w["address"] for w in states if w.get("live")]
    down = [w for w in states if not w.get("live")]
    for worker in down:
        shards = list(
            worker.get("ring_shards")
            or worker.get("owned_shards")
            or ()
        )
        age = worker.get("staleness")
        aged = (
            f"stale for {age:.1f}s"
            if isinstance(age, (int, float))
            else "never scraped"
        )
        if not live:
            recommendations.append(
                {
                    "action": "investigate",
                    "worker": worker["address"],
                    "shards": shards,
                    "reason": (
                        f"worker {worker['address']} is down ({aged}) "
                        f"and no live worker remains to take over"
                    ),
                }
            )
            continue
        recommendations.append(
            {
                "action": "set_workers",
                "workers": list(live),
                "drop": worker["address"],
                "shards": shards,
                "reason": (
                    f"worker {worker['address']} is down ({aged}); "
                    f"shards {shards} are one replica short until the "
                    f"membership drops it"
                ),
            }
        )
    per_worker = (cluster or view.get("rollup", {}).get("cluster") or {}).get(
        "per_worker"
    ) or {}
    for address, counters in sorted(per_worker.items()):
        quarantines = int(counters.get("quarantines", 0))
        if quarantines < quarantine_threshold:
            continue
        if any(r.get("drop") == address for r in recommendations):
            continue  # already recommended out on liveness
        remaining = [k for k in live if k != address]
        if not remaining:
            continue
        recommendations.append(
            {
                "action": "set_workers",
                "workers": remaining,
                "drop": address,
                "shards": next(
                    (
                        list(w.get("ring_shards") or ())
                        for w in states
                        if w["address"] == address
                    ),
                    [],
                ),
                "reason": (
                    f"worker {address} was quarantined {quarantines}x "
                    f"by the coordinator; remove it from the membership "
                    f"before it fails outright"
                ),
            }
        )
    heat = view.get("heat") or {}
    worker_load = heat.get("worker_load") or {}
    live_loads = {k: worker_load.get(k, 0.0) for k in live}
    if len(live_loads) >= 2:
        mean = sum(live_loads.values()) / len(live_loads)
        hottest = max(live_loads, key=lambda k: live_loads[k])
        if mean > 0 and live_loads[hottest] / mean >= heat_skew_threshold:
            coolest = min(live_loads, key=lambda k: live_loads[k])
            shards = heat.get("shards") or {}
            hot_shards = sorted(
                (
                    (shard, entry)
                    for shard, entry in shards.items()
                    if hottest in (entry.get("replicas") or ())
                    or not entry.get("replicas")
                ),
                key=lambda kv: kv[1].get("queries", 0),
                reverse=True,
            )
            if hot_shards and coolest != hottest:
                shard = hot_shards[0][0]
                recommendations.append(
                    {
                        "action": "replica-chain",
                        "shard": int(shard),
                        "from": hottest,
                        "to": coolest,
                        "reason": (
                            f"worker {hottest} carries "
                            f"{live_loads[hottest]:.0f} of a mean "
                            f"{mean:.1f} queries "
                            f"({live_loads[hottest] / mean:.1f}x skew); "
                            f"serve shard {shard} from {coolest} instead"
                        ),
                    }
                )
    return recommendations
