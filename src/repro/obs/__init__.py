"""repro.obs: observability for every tier of the reproduction.

The paper's entire evaluation is about *where time goes*; this package
makes the serving stack able to answer that question live instead of
only in offline benchmarks.  Three pieces, all near-free on the hot
path:

- :mod:`repro.obs.metrics` -- ``Counter``/``Gauge``/``Histogram``
  instruments plus a :class:`MetricsRegistry` whose collector
  namespaces absorb the previously scattered counters
  (``ServerStats``, session/plan-cache/plan-store/ivm counters, the
  process-wide ``ADAPTER`` tallies) behind one ``snapshot()`` and a
  Prometheus text exposition;
- :mod:`repro.obs.trace` -- contextvar-propagated monotonic-clock
  spans over the query lifecycle (parse -> optimise -> plan cache ->
  per-shard execution -> union -> projection -> serve), carried
  across pool boundaries and the wire so one trace id correlates
  client, server and worker;
- :mod:`repro.obs.profile` -- opt-in per-kernel timing of compiled
  arena plans (``repro explain --profile``), the serving-layer twin
  of the paper's fig 7/8; plus :mod:`repro.obs.slowlog` (structured
  JSON slow-query log, size-capped with keep-one rotation) and
  :mod:`repro.obs.report` (the shared CLI rendering of a snapshot);
- :mod:`repro.obs.cluster` -- the cluster-wide plane:
  :class:`ClusterFederation` scrapes every worker's ``metrics`` wire
  frame into one namespaced view (per-worker liveness + staleness,
  summed/max roll-ups, a per-shard heat map drawn against the
  replica chains) and :func:`advise` turns that view into concrete
  rebalance recommendations; :mod:`repro.obs.flight` -- the
  :class:`FlightRecorder` bounded ring of structured fault events,
  dumped as JSONL on demand or automatically on loud faults.
"""

from repro.obs.cluster import ClusterFederation, advise
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import PlanProfile, profile_plan
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Trace, activate, context, current, span

__all__ = [
    "LATENCY_BUCKETS",
    "ClusterFederation",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PlanProfile",
    "advise",
    "profile_plan",
    "SlowQueryLog",
    "Trace",
    "activate",
    "context",
    "current",
    "span",
]
