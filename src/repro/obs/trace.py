"""Query lifecycle tracing: lightweight spans on the monotonic clock.

A :class:`Trace` is one query's (or one batch wave's) collection of
*span records* -- plain dicts ``{"name", "start", "secs", ...meta}``
with ``start`` relative to the trace's own creation instant, so a
trace serialises as-is into a slow-query log entry or a wire frame.

Propagation is by :mod:`contextvars`: the instrumented call sites say
``with trace.span("optimise"):`` via the module-level :func:`span`
helper, which resolves the *active* trace at entry.  When no trace is
active the helper returns a shared no-op context manager -- the whole
feature costs one contextvar read on the off path, which is what lets
tracing default to on (``bench_obs.py`` asserts <5% overhead).

Context does not flow through pools or sockets by itself, so two
explicit carriers exist:

- **process/thread pools**: :func:`repro.exec.worker.traced_call`
  seeds a fresh ``Trace`` from a ``trace.context()`` dict, runs the
  task under it, and returns the records (picklable) for the caller
  to :meth:`Trace.extend` back in, prefixed ``worker:``;
- **the wire**: :class:`~repro.net.client.RemoteSession` attaches
  ``context()`` plus its request id to the frame header; the server
  seeds its trace from it (same trace id) and keeps the whole dict as
  the trace's *origin*, so a slow-query log entry on the server names
  the client's span id.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional

_ACTIVE: ContextVar[Optional["Trace"]] = ContextVar(
    "repro_obs_trace", default=None
)


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


class _NullSpan:
    """The shared do-nothing span: the fast path when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_trace", "_name", "_meta", "_start")

    def __init__(self, trace: "Trace", name: str, meta: Dict[str, Any]):
        self._trace = trace
        self._name = name
        self._meta = meta

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = perf_counter()
        self._trace.add(
            self._name, self._start, end - self._start, **self._meta
        )
        return False


class Trace:
    """One correlated collection of span records.

    ``trace_id`` correlates records across hosts (a server trace is
    seeded with the client's id); ``origin`` is the raw propagation
    context the trace was seeded from (e.g. the client's
    ``{"id", "client"}`` header dict), kept verbatim for logs.
    Records are bounded by ``max_records``; overflow only bumps
    :attr:`dropped` so a pathological plan cannot balloon a log entry.
    """

    __slots__ = (
        "trace_id", "origin", "records", "max_records", "dropped", "_t0"
    )

    def __init__(
        self,
        trace_id: Optional[str] = None,
        origin: Optional[Dict[str, Any]] = None,
        max_records: int = 512,
    ) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.origin = origin
        self.records: List[Dict[str, Any]] = []
        self.max_records = max_records
        self.dropped = 0
        self._t0 = perf_counter()

    def add(
        self, name: str, start: float, secs: float, **meta: Any
    ) -> None:
        """Record a completed span (``start`` on the perf_counter
        clock; stored relative to the trace's creation)."""
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        record: Dict[str, Any] = {
            "name": name,
            "start": start - self._t0,
            "secs": secs,
        }
        if meta:
            record.update(meta)
        self.records.append(record)

    def span(self, name: str, **meta: Any) -> _Span:
        return _Span(self, name, meta)

    def extend(
        self,
        records: Iterable[Dict[str, Any]],
        prefix: Optional[str] = None,
    ) -> None:
        """Absorb records produced under another trace (a pool worker,
        a remote server), optionally prefixing their names."""
        for record in records:
            if len(self.records) >= self.max_records:
                self.dropped += 1
                continue
            if prefix:
                record = {**record, "name": prefix + str(record.get("name"))}
            self.records.append(record)

    def context(self) -> Dict[str, Any]:
        """The propagation context to carry across a boundary."""
        return {"id": self.trace_id}


# -- module-level accessors (the instrumented call sites use these) ----


def current() -> Optional[Trace]:
    return _ACTIVE.get()


def span(name: str, **meta: Any):
    """A span on the active trace, or the shared no-op when none."""
    trace = _ACTIVE.get()
    if trace is None:
        return NULL_SPAN
    return trace.span(name, **meta)


def context() -> Optional[Dict[str, Any]]:
    """The active trace's propagation context (``None`` when idle)."""
    trace = _ACTIVE.get()
    return trace.context() if trace is not None else None


@contextmanager
def activate(trace: Optional[Trace]):
    """Make ``trace`` the active trace for the dynamic extent.

    ``activate(None)`` is a no-op context manager, so call sites can
    write ``with activate(maybe_trace):`` without branching.
    """
    if trace is None:
        yield None
        return
    token = _ACTIVE.set(trace)
    try:
        yield trace
    finally:
        _ACTIVE.reset(token)
