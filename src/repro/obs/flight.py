"""The fault flight recorder: a bounded ring of structured events.

Counters say *how often* the cluster misbehaved; they cannot say in
what order, to whom, or what the coordinator did about it.  The flight
recorder keeps that narrative: every notable fault-handling decision
-- a quarantine opening or closing, an ownership miss, a retry chain
running dry, a degrade-to-local, a rebalance -- is appended as one
plain JSON-safe dict ``{"seq", "ts", "event", ...fields}`` to a
bounded in-memory ring.  A post-mortem then *names what the cluster
did and when* instead of reconstructing it from counter deltas.

Two exits:

- **on demand** -- the ring travels inside the owner's registry
  snapshot (the ``flight`` collector namespace), so ``repro stats
  --connect HOST:PORT --events`` dumps a live process's events as
  JSONL without any new wire frame;
- **automatically on loud faults** -- events whose name is in
  :attr:`FlightRecorder.LOUD` (degrade-to-local, retry exhaustion)
  rewrite the whole ring to ``path`` the moment they happen, so the
  evidence survives even a coordinator that dies right after
  degrading.

Recording is a deque append under a lock -- cheap enough to sit on
every fault path, which are never hot paths.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """A bounded, thread-safe ring of structured fault events.

    Parameters
    ----------
    capacity:
        Ring bound; older events are dropped (and counted in
        ``dropped``) once exceeded.
    path:
        When set, a *loud* event triggers an automatic dump: the whole
        ring is rewritten to this file as JSON lines.
    loud:
        Event names that trigger the automatic dump.  Defaults to
        :attr:`LOUD`.
    """

    #: Events that must never be silent: they rewrite ``path``
    #: immediately when recorded.
    LOUD = frozenset({"degrade-to-local", "retry-exhausted"})

    def __init__(
        self,
        capacity: int = 256,
        path: Optional[str] = None,
        loud: Optional[frozenset] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = int(capacity)
        self.path = path
        self.loud = frozenset(loud) if loud is not None else self.LOUD
        self.recorded = 0
        self.dropped = 0
        self.auto_dumps = 0
        self._seq = 0
        self._ring: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def record(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the stored record.

        ``fields`` must be JSON-safe (they travel in ``metrics`` wire
        frames verbatim).
        """
        with self._lock:
            self._seq += 1
            record: Dict[str, Any] = {
                "seq": self._seq,
                "ts": time.time(),
                "event": event,
            }
            record.update(fields)
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(record)
            self.recorded += 1
            dump_to = self.path if event in self.loud else None
        if dump_to is not None:
            try:
                self.dump(dump_to)
                self.auto_dumps += 1
            except OSError:
                pass  # losing the dump must never break fault handling
        return record

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first (copies are cheap: the
        ring is bounded)."""
        with self._lock:
            return list(self._ring)

    def tail(self, n: int = 10) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._ring)[-n:]

    def dump(self, path: Optional[str] = None) -> int:
        """Write the retained events as JSON lines; returns the count.

        ``path=None`` uses the recorder's configured path.  The file is
        rewritten, not appended: the ring *is* the retained history,
        and a rewrite keeps the dump self-consistent after wraparound.
        """
        target = path or self.path
        if target is None:
            raise ValueError("no dump path configured")
        events = self.events()
        with open(target, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(
                    json.dumps(event, sort_keys=True, default=str) + "\n"
                )
        return len(events)

    def dump_text(self) -> str:
        """The retained events as one JSONL string (CLI output)."""
        return "".join(
            json.dumps(event, sort_keys=True, default=str) + "\n"
            for event in self.events()
        )

    def counters(self) -> Dict[str, Any]:
        """The ``flight`` collector namespace: counters plus the ring
        itself (a list -- identity data the Prometheus flattener
        skips, but ``stats``/``metrics`` frames carry verbatim)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "recorded": self.recorded,
                "dropped": self.dropped,
                "retained": len(self._ring),
                "auto_dumps": self.auto_dumps,
                "events": list(self._ring),
            }
