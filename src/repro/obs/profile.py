"""Per-kernel f-plan profiling: the serving-layer twin of fig 7/8.

The paper's restructuring experiments time whole plans; this module
times each *operator kernel* of a compiled arena pipeline
(:func:`~repro.ops.arena_kernels.compiled_plan_for`) individually --
elapsed seconds plus the output arena's entry/singleton counts and
byte volume, i.e. the throughput each kernel sustained on the columnar
encoding.  Profiling is strictly **opt-in**: the hot
``CompiledArenaPlan.execute`` path stays a generated straight-line
driver; :func:`profile_plan` replays the same prepared kernels one at
a time with a clock around each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class KernelTiming:
    """One kernel's run: what it did and what it produced."""

    index: int
    op: str  # the f-plan step, e.g. "chi(a, b)"
    kind: str  # swap / merge / absorb / push
    kernel: str  # the kernel class that ran
    seconds: float
    out_entries: int
    out_singletons: int
    out_nbytes: int

    @property
    def singletons_per_second(self) -> float:
        return self.out_singletons / self.seconds if self.seconds > 0 else 0.0


@dataclass
class PlanProfile:
    """The per-kernel breakdown of one profiled plan execution."""

    rows: List[KernelTiming] = field(default_factory=list)
    total_seconds: float = 0.0
    in_entries: int = 0
    in_singletons: int = 0
    empty: bool = False
    pruned_at: Optional[int] = None  # kernel index that emptied the run

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [
            {
                "index": r.index,
                "op": r.op,
                "kind": r.kind,
                "kernel": r.kernel,
                "seconds": r.seconds,
                "out_entries": r.out_entries,
                "out_singletons": r.out_singletons,
                "out_nbytes": r.out_nbytes,
                "singletons_per_second": r.singletons_per_second,
            }
            for r in self.rows
        ]

    def format_table(self) -> str:
        """The per-operator table ``repro explain --profile`` prints."""
        if not self.rows:
            return "(identity plan: no restructuring kernels to profile)"
        headers = (
            "#", "operator", "kind", "kernel",
            "ms", "entries", "|E|", "KiB", "|E|/s",
        )
        body: List[Tuple[str, ...]] = []
        for r in self.rows:
            body.append((
                str(r.index),
                r.op,
                r.kind,
                r.kernel,
                f"{r.seconds * 1e3:.3f}",
                str(r.out_entries),
                str(r.out_singletons),
                f"{r.out_nbytes / 1024:.1f}",
                f"{r.singletons_per_second:,.0f}",
            ))
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in body))
            for i in range(len(headers))
        ]
        def fmt(row: Tuple[str, ...]) -> str:
            cells = []
            for i, cell in enumerate(row):
                # left-align the name columns, right-align numbers
                if i in (1, 2, 3):
                    cells.append(cell.ljust(widths[i]))
                else:
                    cells.append(cell.rjust(widths[i]))
            return "  ".join(cells).rstrip()
        lines = [fmt(headers)]
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in body)
        lines.append(
            f"total: {self.total_seconds * 1e3:.3f} ms over "
            f"{len(self.rows)} kernels "
            f"(input |E| {self.in_singletons})"
        )
        if self.pruned_at is not None:
            lines.append(
                f"(run emptied at kernel {self.pruned_at}; "
                "later kernels never ran)"
            )
        return "\n".join(lines)


def profile_plan(plan, fr):
    """Execute ``plan`` on arena input ``fr``, timing every kernel.

    Returns ``(result, PlanProfile)`` where ``result`` is the same
    :class:`~repro.core.factorised.FactorisedRelation` the fused
    driver would have produced.  The kernels themselves are the
    prepared (cached) ones -- only the driver differs, so profiled
    numbers are honest about the production code path.
    """
    from repro.core.factorised import FactorisedRelation
    from repro.ops.arena_kernels import compiled_plan_for

    compiled = compiled_plan_for(plan)
    profile = PlanProfile()
    if fr.is_empty():
        profile.empty = True
        return FactorisedRelation(compiled.out_tree, arena=None), profile

    arena = fr.arena
    profile.in_entries = arena.entry_count
    profile.in_singletons = arena.singleton_count()
    for index, (step, kernel) in enumerate(
        zip(compiled.steps, compiled.kernels)
    ):
        start = perf_counter()
        out = kernel.run(arena)
        seconds = perf_counter() - start
        profile.total_seconds += seconds
        if out is None:
            # A pruning kernel emptied the representation: the result
            # is the empty relation over the plan's output f-tree.
            profile.pruned_at = index
            profile.rows.append(KernelTiming(
                index=index,
                op=str(step),
                kind=step.kind,
                kernel=type(kernel).__name__,
                seconds=seconds,
                out_entries=0,
                out_singletons=0,
                out_nbytes=0,
            ))
            return (
                FactorisedRelation(compiled.out_tree, arena=None),
                profile,
            )
        profile.rows.append(KernelTiming(
            index=index,
            op=str(step),
            kind=step.kind,
            kernel=type(kernel).__name__,
            seconds=seconds,
            out_entries=out.entry_count,
            out_singletons=out.singleton_count(),
            out_nbytes=out.nbytes(),
        ))
        arena = out
    return FactorisedRelation(compiled.out_tree, arena=arena), profile
