"""A unified metrics registry for every tier of the system.

The paper's evaluation is entirely about *where time goes* -- per-
operator restructuring cost (fig 7/8), optimiser time vs evaluation
time (fig 9) -- yet before this module the serving stack could only
answer with scattered ad-hoc counter dicts: ``ServerStats`` on the
network tier, :meth:`~repro.service.session.QuerySession.
cache_counters` on the serving tier, the process-wide ``ADAPTER``
conversion tallies on the core tier.  :class:`MetricsRegistry` pulls
them behind one snapshot:

- **primitive instruments** -- :class:`Counter`, :class:`Gauge`,
  :class:`Histogram` -- cheap enough for hot paths (an increment is
  one attribute add; a histogram observation is a bisect under a
  lock), created on demand and owned by the registry;
- **collectors** -- callables registered under a namespace whose
  return dict is spliced into the snapshot verbatim.  Existing
  counter owners (``SessionStats``, ``PlanCache``, ``ServerStats``,
  ``ADAPTER``) keep their own state and merely *register*; the
  hand-rolled merge sites disappear.

``snapshot()`` returns a plain nested dict (JSON-safe, ships in a
``stats``/``metrics`` wire frame); :meth:`MetricsRegistry.
prometheus_text` renders the same data in the Prometheus text
exposition format for scraping.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Default histogram bounds: log-scale latency buckets from 1us to
#: ~67s (x4 per step).  Fixed so snapshots from different processes
#: are mergeable bucket-for-bucket.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 4**i for i in range(14))


class Counter:
    """A monotone counter.  ``inc`` is a single attribute add --
    atomic enough under the GIL for the hot paths that touch it."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go both ways (queue depths, live handles)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram of observations (latencies, sizes).

    Buckets are upper bounds; an observation lands in the first bucket
    whose bound is >= the value, or the implicit ``+Inf`` overflow
    bucket.  A lock keeps (count, sum, buckets) mutually consistent --
    observations happen per *query*, not per tuple, so the lock is
    nowhere near any inner loop.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count", "_lock")

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        self.bounds = tuple(buckets if buckets is not None else LATENCY_BUCKETS)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram buckets must be sorted")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_right(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    def snapshot(self) -> Dict[str, Any]:
        """``{"count", "sum", "buckets": [[le, cumulative], ...]}``
        with a final ``[null, count]`` row for ``+Inf``."""
        with self._lock:
            counts = list(self.counts)
            total = self.total
            count = self.count
        rows: List[List[Any]] = []
        cumulative = 0
        for bound, n in zip(self.bounds, counts):
            cumulative += n
            rows.append([bound, cumulative])
        rows.append([None, count])
        return {"count": count, "sum": total, "buckets": rows}


_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(*parts: str) -> str:
    return _NAME_RE.sub("_", "_".join(p for p in parts if p))


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


class MetricsRegistry:
    """Instruments plus collector namespaces behind one snapshot.

    >>> registry = MetricsRegistry()
    >>> registry.counter("frames_total").inc()
    >>> registry.register("adapter", lambda: {"to_arena_calls": 3})
    >>> snap = registry.snapshot()
    >>> snap["metrics"]["frames_total"], snap["adapter"]
    (1, {'to_arena_calls': 3})
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: Dict[str, Callable[[], Optional[dict]]] = {}

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            got = self._counters.get(name)
            if got is None:
                got = self._counters[name] = Counter(name)
            return got

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            got = self._gauges.get(name)
            if got is None:
                got = self._gauges[name] = Gauge(name)
            return got

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            got = self._histograms.get(name)
            if got is None:
                got = self._histograms[name] = Histogram(name, buckets)
            return got

    # -- collectors --------------------------------------------------------

    def register(
        self, namespace: str, collector: Callable[[], Optional[dict]]
    ) -> None:
        """Splice ``collector()`` into every snapshot under
        ``namespace``.  Re-registering a namespace replaces it (a
        restarted server re-registers over its session's registry).
        A collector may return ``None`` -- kept as ``None`` in the
        snapshot so absent subsystems stay visible as absent.
        """
        if namespace == "metrics":
            raise ValueError("'metrics' is reserved for the instruments")
        with self._lock:
            self._collectors[namespace] = collector

    # -- exposition --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything, as one plain nested dict (JSON-safe)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            collectors = list(self._collectors.items())
        metrics: Dict[str, Any] = {}
        for counter in counters:
            metrics[counter.name] = counter.value
        for gauge in gauges:
            metrics[gauge.name] = gauge.value
        for histogram in histograms:
            metrics[histogram.name] = histogram.snapshot()
        out: Dict[str, Any] = {"metrics": metrics}
        for namespace, collector in collectors:
            out[namespace] = collector()
        return out

    def prometheus_text(self, prefix: str = "repro") -> str:
        """The snapshot in Prometheus text exposition format.

        Instruments expose under ``<prefix>_<name>``; collector dicts
        are flattened recursively to ``<prefix>_<namespace>_<path>``
        gauges (numeric leaves only -- strings and ``None`` are
        skipped, booleans become 0/1).
        """
        lines: List[str] = []
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            collectors = list(self._collectors.items())
        for counter in counters:
            name = _prom_name(prefix, counter.name)
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(counter.value)}")
        for gauge in gauges:
            name = _prom_name(prefix, gauge.name)
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(gauge.value)}")
        for histogram in histograms:
            name = _prom_name(prefix, histogram.name)
            snap = histogram.snapshot()
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in snap["buckets"]:
                le = "+Inf" if bound is None else _prom_value(bound)
                lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{name}_sum {_prom_value(snap['sum'])}")
            lines.append(f"{name}_count {snap['count']}")
        for namespace, collector in collectors:
            data = collector()
            if data is None:
                continue
            self._flatten(lines, (prefix, namespace), data)
        return "\n".join(lines) + "\n"

    def _flatten(self, lines: List[str], path: Tuple[str, ...], data) -> None:
        for key in sorted(data, key=str):
            value = data[key]
            here = path + (str(key),)
            if isinstance(value, dict):
                self._flatten(lines, here, value)
            elif isinstance(value, bool):
                name = _prom_name(*here)
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {int(value)}")
            elif isinstance(value, (int, float)):
                name = _prom_name(*here)
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_prom_value(value)}")
            # strings, None, lists: identity/provenance, not metrics.
