"""Human-readable rendering of a registry snapshot.

The CLI used to carry three hand-rolled copies of the counter lines
(local ``repro batch``, ``repro batch --connect``, the serve banner's
drain summary) that had already drifted once.  They now all consume
the *same* structure -- the nested dict of
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` (which is also
exactly what a ``stats`` wire frame carries) -- through this one
formatter, so local and remote output cannot diverge again.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def result_cache_line(counters: Optional[Dict[str, Any]]) -> Optional[str]:
    """The ``results:`` line of incremental-maintenance counters, so
    CI smoke runs can assert warm behaviour across a mutation."""
    if not counters:
        return None
    return (
        f"results: {counters['hits']} warm hits, "
        f"{counters['misses']} misses, "
        f"{counters['delta_merges']} delta merges "
        f"({counters['delta_rows']} rows), "
        f"{counters['invalidations']} invalidated"
    )


def session_lines(
    snapshot: Dict[str, Any],
    total_queries: Optional[int] = None,
    plan_store_path: Optional[str] = None,
) -> List[str]:
    """The counter summary of one registry snapshot, line by line.

    ``snapshot`` is :meth:`~repro.obs.metrics.MetricsRegistry.
    snapshot` output -- the local session's or a remote server's
    ``stats`` frame, the keys are identical.  ``total_queries`` adds
    the reuse-rate suffix to the plans line; ``plan_store_path`` the
    entries-at-path suffix to the plan-store line.
    """
    lines: List[str] = []
    sess = snapshot.get("session") or {}
    caches = snapshot.get("caches") or {}

    plans = (
        f"plans: {sess.get('plan_misses', 0)} compiled, "
        f"{sess.get('plan_hits', 0)} cache hits, "
        f"{sess.get('plan_evictions', 0)} evicted, "
        f"{sess.get('batch_deduped', 0)} batch-deduplicated"
    )
    if total_queries:
        reused = sess.get("plan_hits", 0) + sess.get("batch_deduped", 0)
        plans += f" (reuse rate {reused / max(total_queries, 1):.0%})"
    lines.append(plans)
    lines.append(
        f"fallbacks to flat engine: {sess.get('fallbacks', 0)}; "
        f"statistics built {sess.get('stats_builds', 0)}x; "
        f"invalidations: {sess.get('invalidations', 0)}"
    )
    results = result_cache_line(caches.get("results"))
    if results is not None:
        lines.append(results)
    store = snapshot.get("plan_store")
    if store is not None:
        line = (
            f"plan store: {sess.get('store_hits', 0)} hits, "
            f"{sess.get('store_misses', 0)} misses, "
            f"{store['writes']} written, "
            f"{store['stale_evictions']} stale-evicted"
        )
        if plan_store_path is not None:
            line += f" ({store['size']} entries at {plan_store_path})"
        lines.append(line)
    srv = snapshot.get("server")
    if srv is not None:
        lines.append(
            f"server: {srv['requests']} requests over "
            f"{srv['connections']} connections, "
            f"peak pending {srv['peak_pending']}"
        )
    slow = snapshot.get("slow_log")
    if slow is not None:
        lines.append(
            f"slow queries: {slow['recorded']} over "
            f"{slow['threshold']:g}s (of {slow['observed']} observed)"
        )
    return lines
