"""Human-readable rendering of a registry snapshot.

The CLI used to carry three hand-rolled copies of the counter lines
(local ``repro batch``, ``repro batch --connect``, the serve banner's
drain summary) that had already drifted once.  They now all consume
the *same* structure -- the nested dict of
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` (which is also
exactly what a ``stats`` wire frame carries) -- through this one
formatter, so local and remote output cannot diverge again.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def result_cache_line(counters: Optional[Dict[str, Any]]) -> Optional[str]:
    """The ``results:`` line of incremental-maintenance counters, so
    CI smoke runs can assert warm behaviour across a mutation."""
    if not counters:
        return None
    return (
        f"results: {counters['hits']} warm hits, "
        f"{counters['misses']} misses, "
        f"{counters['delta_merges']} delta merges "
        f"({counters['delta_rows']} rows), "
        f"{counters['invalidations']} invalidated"
    )


def session_lines(
    snapshot: Dict[str, Any],
    total_queries: Optional[int] = None,
    plan_store_path: Optional[str] = None,
) -> List[str]:
    """The counter summary of one registry snapshot, line by line.

    ``snapshot`` is :meth:`~repro.obs.metrics.MetricsRegistry.
    snapshot` output -- the local session's or a remote server's
    ``stats`` frame, the keys are identical.  ``total_queries`` adds
    the reuse-rate suffix to the plans line; ``plan_store_path`` the
    entries-at-path suffix to the plan-store line.
    """
    lines: List[str] = []
    sess = snapshot.get("session") or {}
    caches = snapshot.get("caches") or {}

    plans = (
        f"plans: {sess.get('plan_misses', 0)} compiled, "
        f"{sess.get('plan_hits', 0)} cache hits, "
        f"{sess.get('plan_evictions', 0)} evicted, "
        f"{sess.get('batch_deduped', 0)} batch-deduplicated"
    )
    if total_queries:
        reused = sess.get("plan_hits", 0) + sess.get("batch_deduped", 0)
        plans += f" (reuse rate {reused / max(total_queries, 1):.0%})"
    lines.append(plans)
    lines.append(
        f"fallbacks to flat engine: {sess.get('fallbacks', 0)}; "
        f"statistics built {sess.get('stats_builds', 0)}x; "
        f"invalidations: {sess.get('invalidations', 0)}"
    )
    results = result_cache_line(caches.get("results"))
    if results is not None:
        lines.append(results)
    store = snapshot.get("plan_store")
    if store is not None:
        line = (
            f"plan store: {sess.get('store_hits', 0)} hits, "
            f"{sess.get('store_misses', 0)} misses, "
            f"{store['writes']} written, "
            f"{store['stale_evictions']} stale-evicted"
        )
        if plan_store_path is not None:
            line += f" ({store['size']} entries at {plan_store_path})"
        lines.append(line)
    srv = snapshot.get("server")
    if srv is not None:
        lines.append(
            f"server: {srv['requests']} requests over "
            f"{srv['connections']} connections, "
            f"peak pending {srv['peak_pending']}"
        )
    slow = snapshot.get("slow_log")
    if slow is not None:
        lines.append(
            f"slow queries: {slow['recorded']} over "
            f"{slow['threshold']:g}s (of {slow['observed']} observed)"
        )
    return lines


def cluster_lines(
    view: Dict[str, Any],
    advice: Optional[List[Dict[str, Any]]] = None,
) -> List[str]:
    """The ``repro cluster-status`` rendering of a federated view.

    ``view`` is :meth:`repro.obs.cluster.ClusterFederation.view`
    output; ``advice`` the matching :func:`repro.obs.cluster.advise`
    result.  One worker line each (liveness, staleness age, load,
    the key server counters), then the per-shard heat map against
    the replica chains, then the advisor's recommendations.
    """
    lines: List[str] = []
    lines.append(
        f"cluster: {view['live_workers']}/{view['workers_total']} "
        f"workers live, "
        f"{view['shard_count'] if view['shard_count'] is not None else '?'} "
        f"shards, R={view['replication_factor']} "
        f"(poll {view['polls']}, {view['scrape_failures']} scrape "
        f"failures)"
    )
    for name, worker in view["workers"].items():
        age = worker["staleness"]
        aged = "never scraped" if age is None else f"age {age:.1f}s"
        status = "live" if worker["live"] else f"DOWN ({aged})"
        line = f"{name} {worker['address']}: {status}"
        if worker["live"]:
            line += f", {aged}"
        srv = worker.get("server") or {}
        if srv:
            line += (
                f", {srv.get('requests', 0)} requests, "
                f"{srv.get('ownership_rejections', 0)} ownership "
                f"rejections"
            )
        line += f", heat {worker['heat_queries']:.0f} queries"
        shards = worker.get("ring_shards")
        if shards:
            line += f", ring shards {shards}"
        if not worker["live"] and worker.get("error"):
            line += f" [{worker['error']}]"
        lines.append(line)
    shards = (view.get("heat") or {}).get("shards") or {}
    if shards:
        lines.append("heat map (shard: queries rows seconds replicas):")
        for shard, entry in shards.items():
            chain = entry.get("replicas")
            suffix = f" -> {chain}" if chain else ""
            lines.append(
                f"  shard {shard}: {entry['queries']} queries, "
                f"{entry['rows']} rows, {entry['seconds']:.3f}s"
                f"{suffix}"
            )
        skew = (view.get("heat") or {}).get("skew")
        if skew is not None:
            lines.append(f"  load skew: {skew:.2f}x mean")
    if advice is not None:
        if advice:
            lines.append("advisor:")
            for item in advice:
                lines.append(
                    f"  [{item['action']}] {item['reason']}"
                )
        else:
            lines.append("advisor: cluster looks healthy")
    return lines
