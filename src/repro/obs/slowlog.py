"""A structured JSON slow-query log.

Queries whose serve-time latency crosses a configurable threshold are
recorded as plain dict entries -- SQL, engine, elapsed seconds, trace
id, the propagation *origin* (so a server entry names the client that
sent the query), the span breakdown, and the chosen f-tree -- kept in
a bounded in-memory ring and optionally appended as JSON lines to a
file.  One entry answers the question the scattered counters never
could: *why was this particular query slow?*
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional


class SlowQueryLog:
    """Threshold-filtered query log (``threshold`` in seconds).

    ``threshold=0.0`` logs everything (useful in tests and when
    hunting a rare slow query); ``path`` additionally appends each
    entry as one JSON line.  ``max_bytes`` caps the file with a
    keep-one rotation policy: when appending the next line would cross
    the cap, the file moves to ``path + ".1"`` (replacing any previous
    rotation) and a fresh file starts -- so a long-running server
    holds at most ~2x ``max_bytes`` of slow-log on disk, and the
    freshest entries are always in ``path``.
    """

    def __init__(
        self,
        threshold: float = 1.0,
        path: Optional[str] = None,
        capacity: int = 128,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.threshold = float(threshold)
        self.path = path
        self.max_bytes = int(max_bytes) if max_bytes else None
        self.entries: deque = deque(maxlen=capacity)
        self.observed = 0
        self.recorded = 0
        self.rotations = 0
        self._lock = threading.Lock()

    def observe(
        self,
        sql: str,
        engine: str,
        elapsed: float,
        trace_id: Optional[str] = None,
        origin: Optional[Dict[str, Any]] = None,
        spans: Optional[List[Dict[str, Any]]] = None,
        plan: Optional[str] = None,
    ) -> Optional[Dict[str, Any]]:
        """Consider one served query; the entry dict if it was slow."""
        with self._lock:
            self.observed += 1
            if elapsed < self.threshold:
                return None
            entry: Dict[str, Any] = {
                "ts": time.time(),
                "sql": sql,
                "engine": engine,
                "elapsed": elapsed,
                "trace_id": trace_id,
                "origin": origin,
                "spans": list(spans or ()),
                "plan": plan,
            }
            self.recorded += 1
            self.entries.append(entry)
            path = self.path
        if path is not None:
            line = json.dumps(entry, sort_keys=True, default=str)
            with self._lock:
                self._maybe_rotate(path, len(line) + 1)
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
        return entry

    def _maybe_rotate(self, path: str, incoming: int) -> None:
        """Rotate ``path`` aside (keep-one) if appending ``incoming``
        bytes would cross ``max_bytes``.  Caller holds the lock."""
        if self.max_bytes is None:
            return
        try:
            size = os.path.getsize(path)
        except OSError:
            return  # no file yet -- nothing to rotate
        if size > 0 and size + incoming > self.max_bytes:
            os.replace(path, path + ".1")
            self.rotations += 1

    def note_fast(self) -> None:
        """Count a below-threshold query the caller pre-filtered.

        The session checks ``elapsed >= threshold`` *before* paying
        for the SQL/plan text an entry needs; this keeps ``observed``
        honest (every served query) on that cheap path.
        """
        with self._lock:
            self.observed += 1

    def tail(self, n: int = 10) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self.entries)[-n:]

    def counters(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "threshold": self.threshold,
                "observed": self.observed,
                "recorded": self.recorded,
                "retained": len(self.entries),
                "rotations": self.rotations,
            }
