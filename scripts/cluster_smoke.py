"""Cluster smoke: real worker processes, one SIGKILLed under load.

CI's end-to-end check on the cluster tier, with nothing in-process:
three ``repro serve --own-shards`` workers are real subprocesses over
a saved sharded database, the coordinator routes through a
:class:`ReplicatedExecutor` over their addresses, and the busiest
primary worker is SIGKILLed while the coordinator still holds live
connections to it -- so the loss is discovered *mid-batch*, on
in-flight shard tasks, exactly like a crashed machine.

The script exits non-zero on any deviation and prints one greppable
summary line::

    cluster-smoke: answers=unchanged retries=N degrade_to_local=N ...

CI greps that line for ``retries=[1-9]`` (the failover actually ran),
``degrade_to_local=0`` (no silent coordinator-side evaluation) and
``answers=unchanged`` (byte-identical to local evaluation).

Mid-batch -- after the healthy batch has spread heat across the fleet
and before the kill -- the script also runs ``repro cluster-status
--prometheus`` against all three workers and echoes its output, so CI
can additionally grep the federated families (``repro_worker_up`` for
every worker, a non-empty ``repro_shard_queries`` heat map).

Usage: ``PYTHONPATH=src python scripts/cluster_smoke.py [workdir]``
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro import persist
from repro.net import ClusterMap, ReplicatedExecutor
from repro.service import QuerySession
from repro.storage import ShardedDatabase
from repro.workloads import grocery_database, random_spj_queries

WORKERS = 3
SHARDS = 4
REPLICATION = 2


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for(path: str, needle: str, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path) and needle in open(path).read():
            return
        time.sleep(0.2)
    raise SystemExit(
        f"cluster-smoke: {needle!r} never appeared in {path}:\n"
        + (open(path).read() if os.path.exists(path) else "<missing>")
    )


def main() -> int:
    workdir = sys.argv[1] if len(sys.argv) > 1 else "cluster-smoke"
    os.makedirs(workdir, exist_ok=True)
    db = grocery_database()
    sharded = ShardedDatabase.from_database(db, shards=SHARDS)
    saved = os.path.join(workdir, "saved.fdbp")
    persist.save(sharded, saved)

    ports = [free_port() for _ in range(WORKERS)]
    keys = [f"127.0.0.1:{port}" for port in ports]
    ring = ClusterMap(keys, SHARDS, REPLICATION)
    assignments = ring.assignments()

    src = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "src"
    )
    env = {
        **os.environ,
        "PYTHONPATH": os.pathsep.join(
            p
            for p in (
                os.path.abspath(src),
                os.environ.get("PYTHONPATH", ""),
            )
            if p
        ),
    }
    procs = []
    try:
        for key, port in zip(keys, ports):
            out = os.path.join(workdir, f"worker-{port}.out")
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "serve",
                        "--db", saved,
                        "--port", str(port),
                        "--plan-store", "",
                        "--own-shards",
                        ",".join(str(s) for s in assignments[key]),
                    ],
                    stdout=open(out, "w"),
                    stderr=subprocess.STDOUT,
                    env=env,
                )
            )
        for port in ports:
            wait_for(
                os.path.join(workdir, f"worker-{port}.out"), "serving"
            )

        queries = random_spj_queries(
            db, 24, seed=191, max_relations=2, max_equalities=2
        )
        with QuerySession(sharded) as plain:
            expected = [plain.run(q).rows() for q in queries]

        executor = ReplicatedExecutor(
            keys,
            replication_factor=REPLICATION,
            timeout=60,
            backoff_base=0.01,
            quarantine_seconds=60,
            seed=191,
        )
        primaries = [
            ring.replicas_for(s)[0] for s in range(SHARDS)
        ]
        victim = keys.index(max(keys, key=primaries.count))
        mismatches = 0
        with QuerySession(sharded, executor=executor) as coordinator:
            healthy = coordinator.run_batch(queries[:8])
            for result, rows in zip(healthy, expected[:8]):
                mismatches += result.rows() != rows
            if executor.remote_tasks == 0:
                raise SystemExit(
                    "cluster-smoke: healthy batch never went remote"
                )
            # Mid-batch, with heat on every worker: the observability
            # plane must federate the live fleet from one command.
            status = subprocess.run(
                [
                    sys.executable, "-m", "repro", "cluster-status",
                    ",".join(keys),
                    "--replication-factor", str(REPLICATION),
                    "--prometheus",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=60,
            )
            sys.stdout.write(status.stdout)
            sys.stdout.flush()
            if status.returncode != 0:
                print(
                    "cluster-smoke: FAIL: cluster-status exited "
                    f"{status.returncode}:\n{status.stderr}",
                    flush=True,
                )
                return 1
            for needle in (
                'repro_worker_up{worker="',
                'repro_shard_queries{shard="',
            ):
                if needle not in status.stdout:
                    print(
                        "cluster-smoke: FAIL: cluster-status output "
                        f"lacks {needle!r}",
                        flush=True,
                    )
                    return 1
            up = status.stdout.count("repro_worker_up{")
            if up != WORKERS:
                print(
                    f"cluster-smoke: FAIL: expected {WORKERS} "
                    f"repro_worker_up samples, saw {up}",
                    flush=True,
                )
                return 1
            # SIGKILL the busiest primary.  The coordinator still
            # holds live connections to it, so the loss surfaces on
            # in-flight shard tasks of the next batch -- mid-batch,
            # like a crashed machine, not a clean goodbye.
            procs[victim].send_signal(signal.SIGKILL)
            procs[victim].wait(timeout=20)
            wounded = coordinator.run_batch(queries[8:])
            for result, rows in zip(wounded, expected[8:]):
                mismatches += result.rows() != rows
        answers = "unchanged" if mismatches == 0 else (
            f"MISMATCH({mismatches})"
        )
        print(
            f"cluster-smoke: answers={answers} "
            f"retries={executor.retries} "
            f"degrade_to_local={executor.degrade_to_local} "
            f"quarantines={executor.quarantines} "
            f"remote_tasks={executor.remote_tasks} "
            f"workers={WORKERS} replication_factor={REPLICATION} "
            f"shards={SHARDS} victim={keys[victim]}",
            flush=True,
        )
        if mismatches:
            return 1
        if executor.retries == 0:
            print(
                "cluster-smoke: FAIL: the kill never forced a retry",
                flush=True,
            )
            return 1
        if executor.degrade_to_local != 0:
            print(
                "cluster-smoke: FAIL: a shard degraded to local "
                "evaluation despite a live replica",
                flush=True,
            )
            return 1
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                proc.wait(timeout=20)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
