#!/usr/bin/env python3
"""Compare two sets of ``BENCH_*.json`` artifacts and flag regressions.

Every benchmark in this repository writes a machine-readable
``BENCH_<name>.json`` (see ``benchmarks/conftest.bench_json``).  This
script diffs a *baseline* directory (typically the committed
``benchmarks/baselines/``) against a *current* directory (a fresh run,
e.g. CI's ``bench-results/``) and exits non-zero when a gated metric
regresses by more than the threshold (default 20%), closing the
ROADMAP's "cross-PR comparison script" item.

Metric classes
--------------
- **deterministic** (gated): sizes, counts, bytes, compression ratios
  -- anything reproducible from the seeded workloads.  A deviation
  beyond the threshold in *either* direction fails: it means the
  benchmark's behaviour changed, which must be an intentional baseline
  update, never an accident.
- **timing-derived** (informational by default): wall-clock seconds
  and the speedups computed from them.  Shared CI runners are too
  noisy to gate on; pass ``--strict-timing`` to gate them too (useful
  on quiet dedicated hardware).
- **environment-bound** (informational): memory footprints, which vary
  with the interpreter version.

Documents whose provenance stamps differ -- ``scale`` (a smoke
baseline against a full run), ``workload`` (different experiment
shape), ``bench_schema`` (different document layout) or ``benchmark``
-- are skipped entirely, with the mismatching stamps reported, so a
diff can never silently compare two different experiments.  A python
version difference is reported as an informational note only (CI runs
a version matrix against one committed baseline).

Usage::

    python scripts/bench_diff.py benchmarks/baselines bench-results
    python scripts/bench_diff.py old/ new/ --threshold 0.1 --strict-timing

Exit codes: 0 = no regressions, 1 = regressions found, 2 = nothing to
compare (misconfiguration).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Dict, Iterator, List, Tuple

#: Keys that never carry comparable measurements.
IGNORED_KEYS = {
    "unix_time",
    "python",
    "platform",
    "scale",
    "benchmark",
    "bench_schema",
    "workload",
}

#: Provenance keys that must agree before any metric is compared; a
#: mismatch means the two documents describe different experiments
#: (different workload shape, document schema or bench identity), so
#: diffing their numbers would be silently meaningless.
PROVENANCE_KEYS = ("benchmark", "bench_schema", "scale", "workload")

#: Substrings marking a metric as timing-derived (informational unless
#: --strict-timing).  Speedups are ratios *of timings*, so they inherit
#: the noise.
TIMING_MARKERS = ("seconds", "speedup", "elapsed", "time", "q_per_s")

#: Substrings marking a metric as environment-bound (never gated).
ENVIRONMENT_MARKERS = ("memory",)

#: Metric name substrings where *higher* is better; everything else
#: numeric is treated as "should match the baseline".
HIGHER_BETTER_MARKERS = ("speedup", "ratio", "reduction", "hits")


def walk_metrics(
    document: object, prefix: str = ""
) -> Iterator[Tuple[str, float]]:
    """Yield (dotted path, numeric value) leaves of a JSON document."""
    if isinstance(document, dict):
        for key, value in sorted(document.items()):
            if key in IGNORED_KEYS and not prefix:
                continue
            path = f"{prefix}.{key}" if prefix else key
            yield from walk_metrics(value, path)
    elif isinstance(document, list):
        for i, value in enumerate(document):
            yield from walk_metrics(value, f"{prefix}[{i}]")
    elif isinstance(document, bool):
        return
    elif isinstance(document, (int, float)):
        value = float(document)
        if not math.isnan(value):
            yield prefix, value


def classify(path: str) -> str:
    """"deterministic", "timing" or "environment" for a metric path."""
    lowered = path.lower()
    if any(marker in lowered for marker in ENVIRONMENT_MARKERS):
        return "environment"
    if any(marker in lowered for marker in TIMING_MARKERS):
        return "timing"
    return "deterministic"


def higher_is_better(path: str) -> bool:
    lowered = path.lower()
    return any(marker in lowered for marker in HIGHER_BETTER_MARKERS)


def relative_change(baseline: float, current: float) -> float:
    if baseline == current:
        return 0.0
    if baseline == 0.0:
        return math.inf
    return (current - baseline) / abs(baseline)


def compare_documents(
    name: str,
    baseline: Dict,
    current: Dict,
    threshold: float,
    strict_timing: bool,
) -> Tuple[List[str], List[str]]:
    """Returns (regressions, notes) for one artifact pair."""
    regressions: List[str] = []
    notes: List[str] = []
    base_metrics = dict(walk_metrics(baseline))
    curr_metrics = dict(walk_metrics(current))
    for path in sorted(base_metrics):
        if path not in curr_metrics:
            notes.append(f"{name}:{path}: metric missing in current run")
            continue
        kind = classify(path)
        base_value = base_metrics[path]
        curr_value = curr_metrics[path]
        change = relative_change(base_value, curr_value)
        if kind == "timing":
            # Gate only the "worse" direction, and only when asked.
            worse = (
                change < -threshold
                if higher_is_better(path)
                else change > threshold
            )
            if worse:
                line = (
                    f"{name}:{path}: {base_value:g} -> {curr_value:g} "
                    f"({change:+.1%})"
                )
                if strict_timing:
                    regressions.append(line + " [timing]")
                else:
                    notes.append(line + " [timing, informational]")
        elif kind == "environment":
            if abs(change) > threshold:
                notes.append(
                    f"{name}:{path}: {base_value:g} -> {curr_value:g} "
                    f"({change:+.1%}) [environment, informational]"
                )
        else:
            if abs(change) > threshold:
                regressions.append(
                    f"{name}:{path}: {base_value:g} -> {curr_value:g} "
                    f"({change:+.1%}) [deterministic]"
                )
    return regressions, notes


def provenance_mismatches(baseline: Dict, current: Dict) -> List[str]:
    """Human-readable reasons these two documents are incomparable
    (empty when their provenance stamps agree)."""
    reasons: List[str] = []
    for key in PROVENANCE_KEYS:
        base_value = baseline.get(key)
        curr_value = current.get(key)
        if base_value != curr_value:
            reasons.append(f"{key}: {base_value!r} vs {curr_value!r}")
    return reasons


def load_documents(directory: str) -> Dict[str, Dict]:
    out: Dict[str, Dict] = {}
    if not os.path.isdir(directory):
        return out
    for entry in sorted(os.listdir(directory)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            with open(os.path.join(directory, entry), encoding="utf-8") as f:
                out[entry] = json.load(f)
    return out


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json artifact sets for regressions"
    )
    parser.add_argument("baseline", help="directory of baseline artifacts")
    parser.add_argument("current", help="directory of the fresh run")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative change treated as a regression (default 0.20)",
    )
    parser.add_argument(
        "--strict-timing",
        action="store_true",
        help="gate timing-derived metrics too (quiet hardware only)",
    )
    args = parser.parse_args(argv)

    baseline_docs = load_documents(args.baseline)
    current_docs = load_documents(args.current)
    shared = sorted(set(baseline_docs) & set(current_docs))
    if not shared:
        print(
            f"bench-diff: nothing to compare between {args.baseline!r} "
            f"({len(baseline_docs)} artifacts) and {args.current!r} "
            f"({len(current_docs)} artifacts)"
        )
        return 2

    all_regressions: List[str] = []
    compared = 0
    for name in shared:
        base, curr = baseline_docs[name], current_docs[name]
        mismatches = provenance_mismatches(base, curr)
        if mismatches:
            print(
                f"bench-diff: skipping {name}: provenance mismatch "
                f"(the runs describe different experiments):"
            )
            for reason in mismatches:
                print(f"    {reason}")
            continue
        if base.get("python") != curr.get("python"):
            print(
                f"  note: {name}: python {base.get('python')} vs "
                f"{curr.get('python')} [environment, informational]"
            )
        regressions, notes = compare_documents(
            name, base, curr, args.threshold, args.strict_timing
        )
        compared += 1
        for note in notes:
            print(f"  note: {note}")
        for regression in regressions:
            print(f"  REGRESSION: {regression}")
        all_regressions.extend(regressions)
        if not regressions:
            print(f"bench-diff: {name}: ok")

    only_base = sorted(set(baseline_docs) - set(current_docs))
    for name in only_base:
        print(f"bench-diff: warning: {name} missing from the current run")

    if not compared:
        print("bench-diff: no scale-compatible artifact pairs")
        return 2
    if all_regressions:
        print(
            f"bench-diff: {len(all_regressions)} regression(s) beyond "
            f"{args.threshold:.0%} across {compared} artifact(s)"
        )
        return 1
    print(
        f"bench-diff: {compared} artifact(s) within {args.threshold:.0%} "
        f"of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
